//! Every benchmark of the 43-program suite must generate, parse, compile,
//! validate and run under the reference configurations — the corpus is the
//! foundation the whole study stands on.

use esp_corpus::{profile, suite};
use esp_ir::validate_program;
use esp_lang::CompilerConfig;

#[test]
fn all_43_programs_compile_and_run_on_alpha() {
    let mut total_branches = 0u64;
    for bench in suite() {
        let prog = bench
            .compile(&CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        validate_program(&prog).unwrap_or_else(|e| panic!("{}: invalid IR: {e}", bench.name));
        let p = profile(&prog).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            p.dyn_cond_branches > 200,
            "{}: only {} conditional branches executed",
            bench.name,
            p.dyn_cond_branches
        );
        assert!(
            p.executed_sites() >= 10,
            "{}: only {} distinct branch sites executed",
            bench.name,
            p.executed_sites()
        );
        total_branches += p.dyn_cond_branches;
    }
    assert!(
        total_branches > 100_000,
        "suite too small overall: {total_branches}"
    );
}

#[test]
fn all_43_programs_compile_and_run_on_mips() {
    for bench in suite() {
        let prog = bench
            .compile(&CompilerConfig::mips_ref())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        validate_program(&prog).unwrap_or_else(|e| panic!("{}: invalid IR: {e}", bench.name));
        let p = profile(&prog).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(p.dyn_cond_branches > 0, "{}", bench.name);
    }
}

#[test]
fn suite_exhibits_a_wide_taken_rate_spread() {
    // The ESP study needs heterogeneous behaviour: some programs dominated
    // by taken loop latches, others noisy. Check the corpus spans a wide
    // %taken range like the paper's Table 3 (39.9% .. 99.3%).
    let mut rates = Vec::new();
    for bench in suite() {
        let prog = bench.compile(&CompilerConfig::default()).expect("compiles");
        let p = profile(&prog).expect("runs");
        rates.push((bench.name, p.overall_taken_fraction().unwrap_or(0.0)));
    }
    let min = rates.iter().cloned().fold((None, 1.0), |acc, (n, r)| {
        if r < acc.1 { (Some(n), r) } else { acc }
    });
    let max = rates.iter().cloned().fold((None, 0.0), |acc, (n, r)| {
        if r > acc.1 { (Some(n), r) } else { acc }
    });
    assert!(
        max.1 - min.1 > 0.25,
        "taken-rate spread too narrow: min {:?} max {:?} all {rates:?}",
        min,
        max
    );
    assert!(max.1 > 0.75, "no loop-dominated program: {rates:?}");
}

#[test]
fn fortran_programs_use_no_pointer_idioms() {
    use esp_ir::Lang;
    for bench in suite().iter().filter(|b| b.lang == Lang::Fort) {
        let src = bench.source();
        assert!(
            !src.contains("alloc_int") && !src.contains("null"),
            "{}: Fortran source must not contain pointer idioms",
            bench.name
        );
    }
}

#[test]
fn per_program_static_site_counts_are_substantial() {
    // Table 3's "Static" column: real programs had hundreds-thousands of
    // sites; ours should at least have dozens so the learner sees variety.
    let mut total = 0usize;
    for bench in suite() {
        let prog = bench.compile(&CompilerConfig::default()).expect("compiles");
        let sites = prog.branch_sites().len();
        assert!(sites >= 15, "{}: only {sites} static sites", bench.name);
        total += sites;
    }
    assert!(total > 1500, "suite-wide static sites: {total}");
}
