//! Per-heuristic hit rates: the published Ball–Larus numbers and a
//! measurement harness for re-deriving them on any corpus (the paper's
//! DSHC(B&L) vs DSHC(Ours) distinction, and its Table 6).

use esp_exec::Profile;
use esp_ir::{Program, ProgramAnalysis};

use crate::balllarus::Heuristic;
use crate::ctx::BranchCtx;

/// Hit rate (probability the heuristic's prediction is correct) per
/// heuristic, plus how much branch weight it was measured over.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicRates {
    hit: [f64; 9],
    /// Dynamic executions each heuristic's measurement covered.
    pub coverage: [u64; 9],
}

impl HeuristicRates {
    /// The hit rates reported by Ball & Larus on the MIPS (the complement of
    /// the miss rates in the paper's Table 6, "B&L (MIPS)" column). These are
    /// the numbers Wu & Larus plugged into Dempster–Shafer — the paper's
    /// DSHC(B&L) configuration.
    pub fn ball_larus_mips() -> Self {
        let mut hit = [0.0; 9];
        for (h, miss) in [
            (Heuristic::LoopBranch, 0.12),
            (Heuristic::Pointer, 0.40),
            (Heuristic::Opcode, 0.16),
            (Heuristic::Guard, 0.38),
            (Heuristic::LoopExit, 0.20),
            (Heuristic::LoopHeader, 0.25),
            (Heuristic::Call, 0.22),
            (Heuristic::Store, 0.45),
            (Heuristic::Return, 0.28),
        ] {
            hit[h.ordinal()] = 1.0 - miss;
        }
        HeuristicRates {
            hit,
            coverage: [0; 9],
        }
    }

    /// Rebuild a rate table from persisted arrays (the inverse of
    /// [`HeuristicRates::hit_array`] plus the public `coverage` field) — the
    /// import half of model artifacts.
    pub fn from_parts(hit: [f64; 9], coverage: [u64; 9]) -> Self {
        HeuristicRates { hit, coverage }
    }

    /// All nine hit rates in `Heuristic::ordinal` order (export half of
    /// model artifacts).
    pub fn hit_array(&self) -> [f64; 9] {
        self.hit
    }

    /// The hit rate of one heuristic.
    pub fn hit_rate(&self, h: Heuristic) -> f64 {
        self.hit[h.ordinal()]
    }

    /// The miss rate of one heuristic (`1 − hit`).
    pub fn miss_rate(&self, h: Heuristic) -> f64 {
        1.0 - self.hit_rate(h)
    }
}

/// Measure per-heuristic hit rates over profiled programs, weighting each
/// branch site by its dynamic execution count (this reproduces the "Ours"
/// columns of Table 6 and supplies DSHC(Ours)).
///
/// Heuristics that never apply anywhere keep the neutral rate 0.5.
pub fn measure_rates<'a, I>(runs: I) -> HeuristicRates
where
    I: IntoIterator<Item = (&'a Program, &'a ProgramAnalysis, &'a Profile)>,
{
    let mut correct = [0.0f64; 9];
    let mut total = [0.0f64; 9];
    let mut coverage = [0u64; 9];
    for (prog, analysis, profile) in runs {
        for site in prog.branch_sites() {
            let Some(counts) = profile.counts(site) else {
                continue; // never executed
            };
            let ctx = BranchCtx::new(prog, analysis, site);
            for h in Heuristic::TABLE1_ORDER {
                let Some(pred) = h.predict(&ctx) else {
                    continue;
                };
                let right = if pred {
                    counts.taken
                } else {
                    counts.executed - counts.taken
                };
                correct[h.ordinal()] += right as f64;
                total[h.ordinal()] += counts.executed as f64;
                coverage[h.ordinal()] += counts.executed;
            }
        }
    }
    let mut hit = [0.5f64; 9];
    for i in 0..9 {
        if total[i] > 0.0 {
            hit[i] = correct[i] / total[i];
        }
    }
    HeuristicRates { hit, coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_exec::{run, ExecLimits};
    use esp_ir::Lang;
    use esp_lang::{compile_source, CompilerConfig};

    #[test]
    fn published_rates_match_table6() {
        let r = HeuristicRates::ball_larus_mips();
        assert!((r.hit_rate(Heuristic::LoopBranch) - 0.88).abs() < 1e-12);
        assert!((r.miss_rate(Heuristic::Store) - 0.45).abs() < 1e-12);
        assert!((r.miss_rate(Heuristic::Pointer) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn measured_loop_rate_is_high_on_loopy_code() {
        let src = r#"
            int main() {
                int i = 0;
                int s = 0;
                while (i < 1000) { s = s + i; i = i + 1; }
                return s;
            }
        "#;
        let prog = compile_source("t", src, Lang::C, &CompilerConfig::default()).unwrap();
        let analysis = ProgramAnalysis::analyze(&prog);
        let profile = run(&prog, &ExecLimits::default()).unwrap().profile;
        let rates = measure_rates([(&prog, &analysis, &profile)]);
        assert!(
            rates.hit_rate(Heuristic::LoopBranch) > 0.95,
            "loop branch hit rate {} too low",
            rates.hit_rate(Heuristic::LoopBranch)
        );
        assert!(rates.coverage[Heuristic::LoopBranch.ordinal()] > 500);
        // heuristics that never applied stay neutral
        assert_eq!(rates.hit_rate(Heuristic::Pointer), 0.5);
    }
}
