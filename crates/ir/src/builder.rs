//! Convenience builder for constructing [`Function`]s.

use crate::insn::{AluOp, CmpOp, FpuOp, Insn};
use crate::program::{BasicBlock, BlockId, FuncId, Function, Lang, Reg};
use crate::term::{BranchOp, Terminator};

/// Incrementally builds a [`Function`].
///
/// Blocks are created with [`FunctionBuilder::new_block`] and initially end
/// in a placeholder fall-through to themselves; every block's terminator must
/// be set with one of the `set_*` methods before [`FunctionBuilder::finish`].
///
/// # Example
///
/// ```
/// use esp_ir::{FunctionBuilder, Lang};
/// let mut b = FunctionBuilder::new("id", 1, Lang::C);
/// let arg = b.params()[0];
/// let entry = b.entry_block();
/// b.set_return(entry, Some(arg));
/// let f = b.finish();
/// assert_eq!(f.params.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<Reg>,
    blocks: Vec<BasicBlock>,
    term_set: Vec<bool>,
    next_reg: u32,
    lang: Lang,
}

impl FunctionBuilder {
    /// Start a function with `num_params` parameters; parameter registers are
    /// `r0..r{num_params}`. The entry block (block 0) is created implicitly.
    pub fn new(name: impl Into<String>, num_params: u32, lang: Lang) -> Self {
        let params = (0..num_params).map(Reg).collect();
        FunctionBuilder {
            name: name.into(),
            params,
            blocks: vec![BasicBlock {
                insns: Vec::new(),
                term: Terminator::FallThrough { target: BlockId(0) },
            }],
            term_set: vec![false],
            next_reg: num_params,
            lang,
        }
    }

    /// The parameter registers, in order.
    pub fn params(&self) -> &[Reg] {
        &self.params
    }

    /// The entry block id (block 0).
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocate a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Append a new block (in layout order) and return its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            insns: Vec::new(),
            term: Terminator::FallThrough { target: id },
        });
        self.term_set.push(false);
        id
    }

    /// Append an arbitrary instruction to `block`.
    pub fn push(&mut self, block: BlockId, insn: Insn) {
        self.blocks[block.index()].insns.push(insn);
    }

    /// Append `dst = a <op> b`.
    pub fn push_alu(&mut self, block: BlockId, op: AluOp, dst: Reg, a: Reg, b: Reg) {
        self.push(block, Insn::Alu { op, dst, a, b });
    }

    /// Append `dst = a <op> imm`.
    pub fn push_alu_imm(&mut self, block: BlockId, op: AluOp, dst: Reg, a: Reg, imm: i64) {
        self.push(block, Insn::AluImm { op, dst, a, imm });
    }

    /// Append `dst = (a <op> b)`.
    pub fn push_cmp(&mut self, block: BlockId, op: CmpOp, dst: Reg, a: Reg, b: Reg) {
        self.push(block, Insn::Cmp { op, dst, a, b });
    }

    /// Append `dst = (a <op> imm)`.
    pub fn push_cmp_imm(&mut self, block: BlockId, op: CmpOp, dst: Reg, a: Reg, imm: i64) {
        self.push(block, Insn::CmpImm { op, dst, a, imm });
    }

    /// Append a floating-point operation.
    pub fn push_fpu(&mut self, block: BlockId, op: FpuOp, dst: Reg, a: Reg, b: Option<Reg>) {
        self.push(block, Insn::Fpu { op, dst, a, b });
    }

    /// Append `dst = imm`.
    pub fn push_load_imm(&mut self, block: BlockId, dst: Reg, imm: i64) {
        self.push(block, Insn::LoadImm { dst, imm });
    }

    /// Append `dst = mem[base + offset]`.
    pub fn push_load(&mut self, block: BlockId, dst: Reg, base: Reg, offset: i64) {
        self.push(block, Insn::Load { dst, base, offset });
    }

    /// Append `mem[base + offset] = src`.
    pub fn push_store(&mut self, block: BlockId, src: Reg, base: Reg, offset: i64) {
        self.push(block, Insn::Store { src, base, offset });
    }

    /// End `block` by falling through to `target`.
    pub fn set_fallthrough(&mut self, block: BlockId, target: BlockId) {
        self.set_term(block, Terminator::FallThrough { target });
    }

    /// End `block` with an unconditional jump.
    pub fn set_jump(&mut self, block: BlockId, target: BlockId) {
        self.set_term(block, Terminator::Jump { target });
    }

    /// End `block` with a two-way conditional branch.
    pub fn set_cond_branch(
        &mut self,
        block: BlockId,
        op: BranchOp,
        rs: Reg,
        rt: Option<Reg>,
        taken: BlockId,
        not_taken: BlockId,
    ) {
        self.set_term(
            block,
            Terminator::CondBranch {
                op,
                rs,
                rt,
                taken,
                not_taken,
            },
        );
    }

    /// End `block` with a call; execution resumes at `next`.
    pub fn set_call(
        &mut self,
        block: BlockId,
        callee: FuncId,
        args: Vec<Reg>,
        dst: Option<Reg>,
        next: BlockId,
    ) {
        self.set_term(
            block,
            Terminator::Call {
                callee,
                args,
                dst,
                next,
            },
        );
    }

    /// End `block` with a multi-way indirect jump.
    pub fn set_switch(
        &mut self,
        block: BlockId,
        index: Reg,
        targets: Vec<BlockId>,
        default: BlockId,
    ) {
        self.set_term(
            block,
            Terminator::Switch {
                index,
                targets,
                default,
            },
        );
    }

    /// End `block` with a return.
    pub fn set_return(&mut self, block: BlockId, value: Option<Reg>) {
        self.set_term(block, Terminator::Return { value });
    }

    /// Set an arbitrary terminator.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].term = term;
        self.term_set[block.index()] = true;
    }

    /// Whether `block` already has an explicit terminator.
    pub fn is_terminated(&self, block: BlockId) -> bool {
        self.term_set[block.index()]
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics if any block's terminator was never set; that is always a bug
    /// in the code generator.
    pub fn finish(self) -> Function {
        for (i, set) in self.term_set.iter().enumerate() {
            assert!(
                *set,
                "block b{i} of function `{}` has no terminator",
                self.name
            );
        }
        Function {
            name: self.name,
            params: self.params,
            blocks: self.blocks,
            num_regs: self.next_reg,
            lang: self.lang,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_function() {
        let mut b = FunctionBuilder::new("f", 2, Lang::Fort);
        assert_eq!(b.params().len(), 2);
        let r = b.fresh_reg();
        assert_eq!(r, Reg(2));
        let e = b.entry_block();
        b.push_alu(e, AluOp::Add, r, Reg(0), Reg(1));
        b.set_return(e, Some(r));
        let f = b.finish();
        assert_eq!(f.num_regs, 3);
        assert_eq!(f.lang, Lang::Fort);
        assert_eq!(f.blocks[0].insns.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn finish_panics_on_unterminated_block() {
        let mut b = FunctionBuilder::new("f", 0, Lang::C);
        let _ = b.new_block();
        let e = b.entry_block();
        b.set_return(e, None);
        let _ = b.finish();
    }
}
