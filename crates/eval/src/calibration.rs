//! Probability calibration of ESP's network output.
//!
//! The paper notes the network "not only provides a prediction for each
//! branch, but also provides its estimate of the branch probability" (§6).
//! This module measures how trustworthy those probabilities are: branches
//! are bucketed by predicted probability, and each bucket's *actual*
//! execution-weighted taken-rate is compared with its mean prediction.

use esp_ir::BranchId;

use crate::data::BenchData;

/// One calibration bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower edge of the predicted-probability range.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bucket).
    pub hi: f64,
    /// Mean predicted probability (weighted by executions).
    pub mean_predicted: f64,
    /// Actual taken fraction (weighted by executions).
    pub actual_taken: f64,
    /// Total branch executions in the bucket.
    pub weight: u64,
}

/// Calibration summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The buckets, in ascending probability order. Empty buckets are kept
    /// (with `weight == 0`) so callers can plot a fixed grid.
    pub buckets: Vec<Bucket>,
    /// Expected calibration error: execution-weighted mean of
    /// `|mean_predicted − actual_taken|` over non-empty buckets.
    pub ece: f64,
}

/// Bucket the predictions of `predict_prob` over one profiled program.
///
/// # Panics
///
/// Panics if `num_buckets` is zero.
pub fn calibration(
    data: &BenchData,
    num_buckets: usize,
    predict_prob: &mut dyn FnMut(BranchId) -> f64,
) -> Calibration {
    assert!(num_buckets > 0, "need at least one bucket");
    let mut pred_sum = vec![0.0f64; num_buckets];
    let mut taken_sum = vec![0.0f64; num_buckets];
    let mut weight = vec![0u64; num_buckets];
    for site in data.prog.branch_sites() {
        let Some(c) = data.profile.counts(site) else {
            continue;
        };
        let p = predict_prob(site).clamp(0.0, 1.0);
        let idx = ((p * num_buckets as f64) as usize).min(num_buckets - 1);
        pred_sum[idx] += p * c.executed as f64;
        taken_sum[idx] += c.taken as f64;
        weight[idx] += c.executed;
    }
    let mut buckets = Vec::with_capacity(num_buckets);
    let mut ece_num = 0.0f64;
    let mut ece_den = 0.0f64;
    for i in 0..num_buckets {
        let w = weight[i];
        let (mp, at) = if w > 0 {
            (pred_sum[i] / w as f64, taken_sum[i] / w as f64)
        } else {
            (0.0, 0.0)
        };
        if w > 0 {
            ece_num += (mp - at).abs() * w as f64;
            ece_den += w as f64;
        }
        buckets.push(Bucket {
            lo: i as f64 / num_buckets as f64,
            hi: (i + 1) as f64 / num_buckets as f64,
            mean_predicted: mp,
            actual_taken: at,
            weight: w,
        });
    }
    Calibration {
        buckets,
        ece: if ece_den > 0.0 { ece_num / ece_den } else { 0.0 },
    }
}

/// Render a calibration as a fixed-width text histogram.
pub fn render(c: &Calibration) -> String {
    let mut out = String::from("predicted   actual   weight\n");
    for b in &c.buckets {
        if b.weight == 0 {
            continue;
        }
        out.push_str(&format!(
            "[{:.1},{:.1})   {:>6.3}   {:>8}\n",
            b.lo, b.hi, b.actual_taken, b.weight
        ));
    }
    out.push_str(&format!("expected calibration error: {:.3}\n", c.ece));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_corpus::suite;
    use esp_lang::CompilerConfig;

    fn sort_data() -> BenchData {
        let bench = suite().into_iter().find(|b| b.name == "sort").expect("sort");
        BenchData::build(&bench, &CompilerConfig::default())
    }

    #[test]
    fn oracle_probabilities_are_perfectly_calibrated() {
        let data = sort_data();
        let profile = data.profile.clone();
        let mut oracle = |site: BranchId| {
            profile
                .counts(site)
                .and_then(|c| c.taken_prob())
                .unwrap_or(0.5)
        };
        let c = calibration(&data, 10, &mut oracle);
        assert!(c.ece < 0.06, "oracle ECE should be ~0: {}", c.ece);
        let total: u64 = c.buckets.iter().map(|b| b.weight).sum();
        assert_eq!(total, data.profile.dyn_cond_branches);
        assert!(render(&c).contains("expected calibration error"));
    }

    #[test]
    fn constant_half_probability_has_known_error() {
        let data = sort_data();
        let mut flat = |_: BranchId| 0.5;
        let c = calibration(&data, 10, &mut flat);
        // everything lands in one bucket; its ECE is |0.5 - overall taken|
        let taken = data.profile.overall_taken_fraction().expect("branches ran");
        assert!((c.ece - (0.5 - taken).abs()).abs() < 1e-9);
        let nonempty: Vec<&Bucket> = c.buckets.iter().filter(|b| b.weight > 0).collect();
        assert_eq!(nonempty.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let data = sort_data();
        let mut flat = |_: BranchId| 0.5;
        let _ = calibration(&data, 0, &mut flat);
    }
}
