//! Bundled per-function and per-program analyses, shared by the heuristic
//! predictors and the ESP feature extractor.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::loops::LoopInfo;
use crate::pointer::PointerSet;
use crate::program::{BlockId, FuncId, Function, Program};
use crate::term::Terminator;

/// All analyses of a single function, computed once.
#[derive(Debug, Clone)]
pub struct FuncAnalysis {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree.
    pub pdom: DomTree,
    /// Natural loops, Ball–Larus definition.
    pub loops: LoopInfo,
    /// Pointer-like registers.
    pub pointers: PointerSet,
    /// Per block: contains a call or unconditionally passes control to a
    /// block that does (Table 2, feature 16 closure).
    pub reaches_call: Vec<bool>,
    /// Per block: contains a return or unconditionally passes control to one.
    pub reaches_return: Vec<bool>,
    /// Per block: contains a store instruction.
    pub has_store: Vec<bool>,
}

impl FuncAnalysis {
    /// Analyse one function.
    pub fn analyze(func: &Function) -> Self {
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::postdominators(&cfg);
        let loops = LoopInfo::new(&cfg, &dom);
        let pointers = PointerSet::analyze(func);

        let n = func.num_blocks();
        let has_store: Vec<bool> = func.blocks.iter().map(|b| b.contains_store()).collect();
        let direct_call: Vec<bool> = func
            .blocks
            .iter()
            .map(|b| matches!(b.term, Terminator::Call { .. }))
            .collect();
        let direct_return: Vec<bool> = func
            .blocks
            .iter()
            .map(|b| matches!(b.term, Terminator::Return { .. }))
            .collect();

        let closure = |direct: &[bool]| -> Vec<bool> {
            let mut out = vec![false; n];
            for (b, reaches) in out.iter_mut().enumerate() {
                let mut cur = BlockId(b as u32);
                let mut steps = 0usize;
                loop {
                    if direct[cur.index()] {
                        *reaches = true;
                        break;
                    }
                    match func.block(cur).term.sole_successor() {
                        Some(next) if steps <= n => {
                            cur = next;
                            steps += 1;
                        }
                        _ => break,
                    }
                }
            }
            out
        };

        FuncAnalysis {
            cfg,
            dom,
            pdom,
            loops,
            pointers,
            reaches_call: closure(&direct_call),
            reaches_return: closure(&direct_return),
            has_store,
        }
    }

    /// Whether the *taken* target lies at or before the branch block in
    /// layout order — i.e. the branch is a backward branch (Table 2,
    /// feature 2; the BTFNT bit).
    pub fn is_backward(&self, branch_block: BlockId, taken: BlockId) -> bool {
        taken.0 <= branch_block.0
    }
}

/// Analyses for every function of a program.
#[derive(Debug)]
pub struct ProgramAnalysis {
    funcs: Vec<FuncAnalysis>,
}

impl ProgramAnalysis {
    /// Analyse all functions of `prog`.
    pub fn analyze(prog: &Program) -> Self {
        ProgramAnalysis {
            funcs: prog.funcs.iter().map(FuncAnalysis::analyze).collect(),
        }
    }

    /// Borrow the analysis of one function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &FuncAnalysis {
        &self.funcs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::program::{Isa, Lang};
    use crate::term::BranchOp;

    #[test]
    fn closures_follow_unconditional_chains() {
        // b0 (branch) -> b1 -> b2(call) | -> b3(ret)
        let mut b = FunctionBuilder::new("f", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let mid = b.new_block();
        let callb = b.new_block();
        let retb = b.new_block();
        let after = b.new_block();
        b.push_load_imm(e, c, 1);
        b.set_cond_branch(e, BranchOp::Bne, c, None, mid, retb);
        b.set_jump(mid, callb);
        b.set_call(callb, crate::program::FuncId(0), vec![], None, after);
        b.set_return(after, None);
        b.set_return(retb, None);
        let f = b.finish();
        let a = FuncAnalysis::analyze(&f);
        assert!(a.reaches_call[1], "mid passes unconditionally to a call");
        assert!(a.reaches_call[2]);
        assert!(!a.reaches_call[3]);
        assert!(a.reaches_return[3]);
        assert!(!a.reaches_return[2], "call blocks don't chain to return");
    }

    #[test]
    fn backwardness_uses_layout_order() {
        let mut b = FunctionBuilder::new("f", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let next = b.new_block();
        b.push_load_imm(e, c, 0);
        b.set_fallthrough(e, next);
        b.set_cond_branch(next, BranchOp::Bne, c, None, e, next);
        let f = b.finish();
        let a = FuncAnalysis::analyze(&f);
        assert!(a.is_backward(BlockId(1), BlockId(0)));
        assert!(a.is_backward(BlockId(1), BlockId(1)), "self-loop is backward");
        assert!(!a.is_backward(BlockId(0), BlockId(1)));
    }

    #[test]
    fn program_analysis_indexes_functions() {
        let mk = |name: &str| {
            let mut b = FunctionBuilder::new(name, 0, Lang::C);
            let e = b.entry_block();
            b.set_return(e, None);
            b.finish()
        };
        let prog = Program {
            name: "p".into(),
            funcs: vec![mk("main"), mk("g")],
            main: FuncId(0),
            isa: Isa::Alpha,
        };
        let pa = ProgramAnalysis::analyze(&prog);
        assert_eq!(pa.func(FuncId(1)).cfg.num_blocks(), 1);
    }

    use crate::program::FuncId;
}
