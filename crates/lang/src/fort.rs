//! The Fort front end: a small Fortran-77-flavoured language.
//!
//! ```text
//! INTEGER FUNCTION SUMUP(A, N)
//!   INTEGER A(*)
//!   INTEGER N, I, S
//!   S = 0
//!   DO I = 1, N
//!     S = S + A(I)
//!   ENDDO
//!   SUMUP = S
//!   RETURN
//! END
//! ```
//!
//! Supported constructs: `PROGRAM` / `INTEGER FUNCTION` / `REAL FUNCTION` /
//! `SUBROUTINE` units ended by `END`; `INTEGER` / `REAL` declarations
//! (scalars, local arrays `A(100)` and array parameters `A(*)`); 1-based
//! array indexing `A(I)`; counted `DO var = from, to [, step]` … `ENDDO`;
//! `DO WHILE (cond)` … `ENDDO`; block `IF (cond) THEN … [ELSE …] ENDIF`;
//! `CALL sub(args)`; `RETURN`; `EXIT` / `CYCLE`; dotted operators `.GT.`
//! `.GE.` `.LT.` `.LE.` `.EQ.` `.NE.` `.AND.` `.OR.` `.NOT.`; intrinsic
//! `ABS(x)`, casts `INT(e)` / `REAL(e)`; `!` comments. Statements are
//! line-oriented; identifiers and keywords are case-insensitive.
//!
//! A function's return value is set by assigning to the function name, as in
//! Fortran; the parser desugars this to an ordinary local plus explicit
//! returns.

use esp_ir::Lang;

use crate::ast::{BinOp, Expr, FuncDecl, LValue, Module, Stmt, Type, UnOp};
use crate::error::ParseError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    /// Single-character punctuation or a dotted operator spelled as text
    /// (`.gt.` → `>` etc. are mapped during lexing).
    Punct(&'static str),
    Newline,
    Eof,
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    while pos < b.len() {
        let c = b[pos];
        if c == b'\n' {
            // Collapse repeated newlines.
            if !matches!(out.last(), Some((Tok::Newline, _)) | None) {
                out.push((Tok::Newline, line));
            }
            line += 1;
            pos += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if c == b'!' {
            while pos < b.len() && b[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = pos;
            while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                pos += 1;
            }
            let s = std::str::from_utf8(&b[start..pos])
                .expect("ascii ident")
                .to_ascii_lowercase();
            out.push((Tok::Ident(s), line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = pos;
            while pos < b.len() && b[pos].is_ascii_digit() {
                pos += 1;
            }
            // A digit followed by `.` is a float UNLESS the dot starts a
            // dotted operator (`1.GT.` never happens since operands are
            // spaced; still, require a digit after the dot).
            if pos + 1 < b.len() && b[pos] == b'.' && b[pos + 1].is_ascii_digit() {
                pos += 1;
                while pos < b.len() && b[pos].is_ascii_digit() {
                    pos += 1;
                }
                let s = std::str::from_utf8(&b[start..pos]).expect("ascii number");
                let v: f64 = s
                    .parse()
                    .map_err(|_| ParseError::new(line, format!("bad float literal `{s}`")))?;
                out.push((Tok::Float(v), line));
            } else if pos < b.len() && b[pos] == b'.' && !is_dotted_op_at(b, pos) {
                // `1.` style float literal
                pos += 1;
                let s = std::str::from_utf8(&b[start..pos]).expect("ascii number");
                let v: f64 = s[..s.len() - 1]
                    .parse()
                    .map_err(|_| ParseError::new(line, format!("bad float literal `{s}`")))?;
                out.push((Tok::Float(v), line));
            } else {
                let s = std::str::from_utf8(&b[start..pos]).expect("ascii number");
                let v: i64 = s
                    .parse()
                    .map_err(|_| ParseError::new(line, format!("bad integer literal `{s}`")))?;
                out.push((Tok::Int(v), line));
            }
            continue;
        }
        if c == b'.' {
            // Dotted operator.
            let ops: &[(&str, &'static str)] = &[
                (".gt.", ">"),
                (".ge.", ">="),
                (".lt.", "<"),
                (".le.", "<="),
                (".eq.", "=="),
                (".ne.", "!="),
                (".and.", "&&"),
                (".or.", "||"),
                (".not.", "!"),
            ];
            let rest = &src[pos..];
            let lower = rest
                .get(..6.min(rest.len()))
                .unwrap_or("")
                .to_ascii_lowercase();
            let mut matched = false;
            for (txt, p) in ops {
                if lower.starts_with(txt) {
                    out.push((Tok::Punct(p), line));
                    pos += txt.len();
                    matched = true;
                    break;
                }
            }
            if matched {
                continue;
            }
            return Err(ParseError::new(line, "stray `.`"));
        }
        let puncts: &[&'static str] = &["+", "-", "*", "/", "(", ")", ",", "="];
        let mut matched = false;
        for p in puncts {
            if src[pos..].starts_with(p) {
                out.push((Tok::Punct(p), line));
                pos += p.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        return Err(ParseError::new(
            line,
            format!("unexpected character `{}`", c as char),
        ));
    }
    if !matches!(out.last(), Some((Tok::Newline, _)) | None) {
        out.push((Tok::Newline, line));
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

/// Whether `b[pos..]` starts a dotted operator like `.gt.`.
fn is_dotted_op_at(b: &[u8], pos: usize) -> bool {
    for op in [
        ".gt.", ".ge.", ".lt.", ".le.", ".eq.", ".ne.", ".and.", ".or.", ".not.",
    ] {
        if b.len() >= pos + op.len() && b[pos..pos + op.len()].eq_ignore_ascii_case(op.as_bytes())
        {
            return true;
        }
    }
    false
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
    /// Set inside a FUNCTION unit: (function name, its type), so that
    /// `name = expr` assigns the return slot and `RETURN` returns it.
    ret_var: Option<(String, Type)>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line(), msg)
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Newline | Tok::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other:?}"))),
        }
    }

    fn skip_newlines(&mut self) {
        while *self.peek() == Tok::Newline {
            self.bump();
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn parse_module(&mut self, name: &str) -> Result<Module, ParseError> {
        let mut funcs = Vec::new();
        self.skip_newlines();
        while *self.peek() != Tok::Eof {
            funcs.push(self.parse_unit()?);
            self.skip_newlines();
        }
        Ok(Module {
            name: name.to_string(),
            funcs,
        })
    }

    /// One program unit: PROGRAM / [INTEGER|REAL] FUNCTION / SUBROUTINE … END
    fn parse_unit(&mut self) -> Result<FuncDecl, ParseError> {
        if self.eat_kw("program") {
            let _unit_name = self.expect_ident()?;
            self.expect_newline()?;
            self.ret_var = None;
            let body = self.parse_stmts_until(&["end"])?;
            self.expect_kw("end")?;
            self.expect_newline()?;
            return Ok(FuncDecl {
                name: "main".to_string(),
                params: Vec::new(),
                ret: None,
                body,
                lang: Lang::Fort,
            });
        }
        if self.eat_kw("subroutine") {
            let name = self.expect_ident()?;
            let params = self.parse_param_names()?;
            self.expect_newline()?;
            self.ret_var = None;
            let (body, params) = self.parse_unit_body(params, None)?;
            return Ok(FuncDecl {
                name,
                params,
                ret: None,
                body,
                lang: Lang::Fort,
            });
        }
        let ret_ty = if self.eat_kw("integer") {
            Type::Int
        } else if self.eat_kw("real") {
            Type::Float
        } else {
            return Err(self.err(format!(
                "expected PROGRAM, SUBROUTINE or typed FUNCTION, found {:?}",
                self.peek()
            )));
        };
        self.expect_kw("function")?;
        let name = self.expect_ident()?;
        let params = self.parse_param_names()?;
        self.expect_newline()?;
        self.ret_var = Some((name.clone(), ret_ty));
        let (mut body, params) = self.parse_unit_body(params, Some((name.clone(), ret_ty)))?;
        // Declare the return slot at the very top.
        body.insert(
            0,
            Stmt::Let {
                name: name.clone(),
                ty: ret_ty,
                init: None,
            },
        );
        // Falling off END returns the slot.
        body.push(Stmt::Return(Some(Expr::Var(name.clone()))));
        Ok(FuncDecl {
            name,
            params,
            ret: Some(ret_ty),
            body,
            lang: Lang::Fort,
        })
    }

    fn parse_param_names(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = Vec::new();
        if self.eat_punct("(")
            && !self.eat_punct(")") {
                loop {
                    names.push(self.expect_ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
        Ok(names)
    }

    /// Parse declarations + executable statements until `END`, resolving the
    /// parameter types from the declaration lines (Fortran declares parameter
    /// types in the body).
    #[allow(clippy::type_complexity)]
    fn parse_unit_body(
        &mut self,
        param_names: Vec<String>,
        _fn_ret: Option<(String, Type)>,
    ) -> Result<(Vec<Stmt>, Vec<(String, Type)>), ParseError> {
        let body = self.parse_stmts_until(&["end"])?;
        self.expect_kw("end")?;
        self.expect_newline()?;

        // Pull parameter declarations out of the body.
        let mut param_types: Vec<Option<Type>> = vec![None; param_names.len()];
        let mut kept = Vec::with_capacity(body.len());
        for st in body {
            if let Stmt::Let {
                ref name,
                ty,
                init: None,
            } = st
            {
                if let Some(i) = param_names.iter().position(|p| p == name) {
                    param_types[i] = Some(ty);
                    continue; // parameter decl, not a local
                }
            }
            kept.push(st);
        }
        let params = param_names
            .into_iter()
            .zip(param_types)
            .map(|(n, t)| {
                t.map(|t| (n.clone(), t)).ok_or_else(|| {
                    ParseError::new(0, format!("parameter `{n}` was never declared"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((kept, params))
    }

    /// Parse statements until one of the given closing keywords is the next
    /// token (the keyword is not consumed).
    fn parse_stmts_until(&mut self, until: &[&str]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of file inside a block"));
            }
            if until.iter().any(|k| self.at_kw(k)) {
                return Ok(out);
            }
            self.parse_stmt_into(&mut out)?;
        }
    }

    /// Parse one statement; declarations with multiple names push several
    /// `Let`s.
    fn parse_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // Declarations: INTEGER a, b(10), c  /  REAL x(*)
        if self.at_kw("integer") || self.at_kw("real") {
            let base = if self.eat_kw("integer") {
                Type::Int
            } else {
                self.expect_kw("real")?;
                Type::Float
            };
            loop {
                let name = self.expect_ident()?;
                if self.eat_punct("(") {
                    // Array: `(N)` local with constant-or-expr length or
                    // `(*)` assumed-size parameter.
                    if self.eat_punct("*") {
                        self.expect_punct(")")?;
                        let pty = if base == Type::Int {
                            Type::PtrInt
                        } else {
                            Type::PtrFloat
                        };
                        out.push(Stmt::Let {
                            name,
                            ty: pty,
                            init: None,
                        });
                    } else {
                        let len = self.parse_expr()?;
                        self.expect_punct(")")?;
                        let pty = if base == Type::Int {
                            Type::PtrInt
                        } else {
                            Type::PtrFloat
                        };
                        out.push(Stmt::Let {
                            name,
                            ty: pty,
                            init: Some(Expr::Alloc(base, Box::new(len))),
                        });
                    }
                } else {
                    out.push(Stmt::Let {
                        name,
                        ty: base,
                        init: None,
                    });
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            return self.expect_newline();
        }

        if self.at_kw("do") {
            out.push(self.parse_do()?);
            return Ok(());
        }
        if self.at_kw("if") {
            out.push(self.parse_if()?);
            return Ok(());
        }
        if self.eat_kw("call") {
            let name = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat_punct("(")
                && !self.eat_punct(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
            self.expect_newline()?;
            out.push(Stmt::ExprStmt(Expr::Call(name, args)));
            return Ok(());
        }
        if self.eat_kw("return") {
            self.expect_newline()?;
            let ret = match &self.ret_var {
                Some((name, _)) => Stmt::Return(Some(Expr::Var(name.clone()))),
                None => Stmt::Return(None),
            };
            out.push(ret);
            return Ok(());
        }
        if self.eat_kw("exit") {
            self.expect_newline()?;
            out.push(Stmt::Break);
            return Ok(());
        }
        if self.eat_kw("cycle") {
            self.expect_newline()?;
            out.push(Stmt::Continue);
            return Ok(());
        }

        // Assignment: lvalue = expr
        let name = self.expect_ident()?;
        let lv = if self.eat_punct("(") {
            let idx = self.parse_expr()?;
            self.expect_punct(")")?;
            // Fortran arrays are 1-based; normalise to word offsets here.
            LValue::Index(
                Box::new(Expr::Var(name)),
                Box::new(Expr::Bin(
                    BinOp::Sub,
                    Box::new(idx),
                    Box::new(Expr::Int(1)),
                )),
            )
        } else {
            LValue::Var(name)
        };
        self.expect_punct("=")?;
        let rhs = self.parse_expr()?;
        self.expect_newline()?;
        out.push(Stmt::Assign(lv, rhs));
        Ok(())
    }

    /// `DO var = from, to [, step]` … `ENDDO` or `DO WHILE (cond)` … `ENDDO`.
    fn parse_do(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("do")?;
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_newline()?;
            let body = self.parse_stmts_until(&["enddo"])?;
            self.expect_kw("enddo")?;
            self.expect_newline()?;
            return Ok(Stmt::While { cond, body });
        }
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let from = self.parse_expr()?;
        self.expect_punct(",")?;
        let to = self.parse_expr()?;
        let step = if self.eat_punct(",") {
            let neg = self.eat_punct("-");
            match self.bump() {
                Tok::Int(k) if k > 0 => {
                    if neg {
                        -k
                    } else {
                        k
                    }
                }
                other => {
                    return Err(self.err(format!("expected constant DO step, found {other:?}")))
                }
            }
        } else {
            1
        };
        self.expect_newline()?;
        let body = self.parse_stmts_until(&["enddo"])?;
        self.expect_kw("enddo")?;
        self.expect_newline()?;
        Ok(Stmt::For {
            var,
            from,
            to,
            step,
            body,
        })
    }

    /// `IF (cond) THEN … [ELSE …] ENDIF` or one-line `IF (cond) <stmt>`.
    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("if")?;
        self.expect_punct("(")?;
        let cond = self.parse_expr()?;
        self.expect_punct(")")?;
        if self.eat_kw("then") {
            self.expect_newline()?;
            let then_blk = self.parse_stmts_until(&["else", "elseif", "endif"])?;
            let else_blk = if self.eat_kw("elseif") {
                // Re-enter as a nested IF: rewind is awkward, so parse the
                // rest of the ELSEIF as a fresh IF whose keyword we already
                // consumed.
                self.expect_punct("(")?;
                let c2 = self.parse_expr()?;
                self.expect_punct(")")?;
                self.expect_kw("then")?;
                self.expect_newline()?;
                let t2 = self.parse_stmts_until(&["else", "elseif", "endif"])?;
                let e2 = if self.eat_kw("else") {
                    self.expect_newline()?;
                    let e = self.parse_stmts_until(&["endif"])?;
                    self.expect_kw("endif")?;
                    self.expect_newline()?;
                    e
                } else {
                    self.expect_kw("endif")?;
                    self.expect_newline()?;
                    Vec::new()
                };
                vec![Stmt::If {
                    cond: c2,
                    then_blk: t2,
                    else_blk: e2,
                }]
            } else if self.eat_kw("else") {
                self.expect_newline()?;
                let e = self.parse_stmts_until(&["endif"])?;
                self.expect_kw("endif")?;
                self.expect_newline()?;
                e
            } else {
                self.expect_kw("endif")?;
                self.expect_newline()?;
                Vec::new()
            };
            Ok(Stmt::If {
                cond,
                then_blk,
                else_blk,
            })
        } else {
            // One-line IF: the remainder of the line is a single statement.
            let mut one = Vec::new();
            self.parse_stmt_into(&mut one)?;
            Ok(Stmt::If {
                cond,
                then_blk: one,
                else_blk: Vec::new(),
            })
        }
    }

    // Expression grammar mirrors Cee's precedence.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_and()?;
        while self.eat_punct("||") {
            let r = self.parse_and()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_cmp()?;
        while self.eat_punct("&&") {
            let r = self.parse_cmp()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.parse_add()?;
        let op = match self.peek() {
            Tok::Punct("==") => BinOp::Eq,
            Tok::Punct("!=") => BinOp::Ne,
            Tok::Punct("<") => BinOp::Lt,
            Tok::Punct("<=") => BinOp::Le,
            Tok::Punct(">") => BinOp::Gt,
            Tok::Punct(">=") => BinOp::Ge,
            _ => return Ok(e),
        };
        self.bump();
        let r = self.parse_add()?;
        Ok(Expr::Bin(op, Box::new(e), Box::new(r)))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.parse_mul()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.parse_unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(s) if s == "abs" => {
                self.expect_punct("(")?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Un(UnOp::Abs, Box::new(e)))
            }
            Tok::Ident(s) if s == "int" => {
                self.expect_punct("(")?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Cast(Type::Int, Box::new(e)))
            }
            Tok::Ident(s) if s == "real" => {
                self.expect_punct("(")?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Cast(Type::Float, Box::new(e)))
            }
            Tok::Ident(s) if s == "mod" => {
                self.expect_punct("(")?;
                let a = self.parse_expr()?;
                self.expect_punct(",")?;
                let b = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Bin(BinOp::Rem, Box::new(a), Box::new(b)))
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    // Array index or function call — disambiguated later by
                    // the type checker; syntactically we treat a single
                    // argument as *either*, so we build `Index` here and let
                    // the checker rewrite it into a call when `name` is a
                    // function. Multi-argument forms are always calls.
                    let first = self.parse_expr()?;
                    if self.eat_punct(")") {
                        // 1-based index normalised to a word offset.
                        Ok(Expr::Index(
                            Box::new(Expr::Var(name)),
                            Box::new(Expr::Bin(
                                BinOp::Sub,
                                Box::new(first),
                                Box::new(Expr::Int(1)),
                            )),
                        ))
                    } else {
                        self.expect_punct(",")?;
                        let mut args = vec![first];
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                        Ok(Expr::Call(name, args))
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse Fort source text into a [`Module`].
///
/// Single-argument `name(e)` forms are parsed as array indexing; the type
/// checker rewrites them into calls when `name` resolves to a function (the
/// classic Fortran ambiguity).
///
/// # Errors
///
/// Returns a [`ParseError`] with the failing line on malformed input.
pub fn parse(name: &str, src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        ret_var: None,
    };
    p.parse_module(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_do_loop() {
        let m = parse(
            "t",
            r#"
            INTEGER FUNCTION SUMUP(A, N)
              INTEGER A(*)
              INTEGER N, I, S
              S = 0
              DO I = 1, N
                S = S + A(I)
              ENDDO
              SUMUP = S
              RETURN
            END
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        assert_eq!(f.name, "sumup");
        assert_eq!(
            f.params,
            vec![("a".into(), Type::PtrInt), ("n".into(), Type::Int)]
        );
        assert_eq!(f.ret, Some(Type::Int));
        assert_eq!(f.lang, Lang::Fort);
        // body[0] is the injected return-slot declaration
        assert!(matches!(&f.body[0], Stmt::Let { name, .. } if name == "sumup"));
        // explicit RETURN became Return(Var(sumup))
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Return(Some(Expr::Var(n))) if n == "sumup")));
    }

    #[test]
    fn program_unit_becomes_main() {
        let m = parse(
            "t",
            r#"
            PROGRAM DEMO
              INTEGER I
              I = 0
              DO WHILE (I .LT. 5)
                I = I + 1
              ENDDO
            END
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        assert_eq!(f.name, "main");
        assert!(f.params.is_empty());
        assert!(matches!(&f.body[2], Stmt::While { .. }));
    }

    #[test]
    fn if_then_else_and_one_line_if() {
        let m = parse(
            "t",
            r#"
            INTEGER FUNCTION SGN(X)
              INTEGER X
              IF (X .GT. 0) THEN
                SGN = 1
              ELSE
                SGN = 0 - 1
              ENDIF
              IF (X .EQ. 0) SGN = 0
              RETURN
            END
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let ifs: Vec<&Stmt> = f
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::If { .. }))
            .collect();
        assert_eq!(ifs.len(), 2);
        if let Stmt::If { else_blk, .. } = ifs[0] {
            assert_eq!(else_blk.len(), 1);
        }
        if let Stmt::If { else_blk, .. } = ifs[1] {
            assert!(else_blk.is_empty());
        }
    }

    #[test]
    fn arrays_are_one_based() {
        let m = parse(
            "t",
            r#"
            PROGRAM P
              REAL X(10)
              X(1) = 2.5
            END
            "#,
        )
        .unwrap();
        match &m.funcs[0].body[1] {
            Stmt::Assign(LValue::Index(_, idx), _) => {
                // index is (1 - 1)
                assert!(matches!(**idx, Expr::Bin(BinOp::Sub, _, _)));
            }
            other => panic!("expected indexed assign, got {other:?}"),
        }
    }

    #[test]
    fn call_and_subroutine() {
        let m = parse(
            "t",
            r#"
            SUBROUTINE TWIDDLE(A, N)
              INTEGER A(*)
              INTEGER N
              A(1) = N
              RETURN
            END
            PROGRAM P
              INTEGER B(5)
              CALL TWIDDLE(B, 3)
            END
            "#,
        )
        .unwrap();
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.funcs[0].ret, None);
        assert!(matches!(
            &m.funcs[1].body[1],
            Stmt::ExprStmt(Expr::Call(n, args)) if n == "twiddle" && args.len() == 2
        ));
    }

    #[test]
    fn dotted_operators_and_intrinsics() {
        let m = parse(
            "t",
            r#"
            PROGRAM P
              REAL X
              INTEGER OK
              X = ABS(0.0 - 2.5)
              OK = (X .GE. 2.0) .AND. (X .LE. 3.0)
              IF (.NOT. OK) THEN
                OK = MOD(7, 2)
              ENDIF
            END
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Assign(_, Expr::Bin(BinOp::And, _, _)))));
    }

    #[test]
    fn exit_and_cycle() {
        let m = parse(
            "t",
            r#"
            PROGRAM P
              INTEGER I
              DO I = 1, 10
                IF (I .EQ. 3) CYCLE
                IF (I .EQ. 7) EXIT
              ENDDO
            END
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let Stmt::For { body, .. } = &f.body[1] else {
            panic!("expected DO loop");
        };
        assert!(matches!(&body[0], Stmt::If { then_blk, .. } if then_blk[0] == Stmt::Continue));
        assert!(matches!(&body[1], Stmt::If { then_blk, .. } if then_blk[0] == Stmt::Break));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("t", "PROGRAM P\n X = @\nEND\n").is_err());
        assert!(parse("t", "FUNCTION NOTYPE(X)\nEND\n").is_err());
        // parameter never declared
        assert!(parse("t", "SUBROUTINE S(A)\nRETURN\nEND\n").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        let m = parse("t", "program p\ninteger i\ni = 1\nend\n").unwrap();
        assert_eq!(m.funcs[0].name, "main");
    }

    #[test]
    fn downward_do_loop() {
        let m = parse(
            "t",
            "PROGRAM P\nINTEGER I, S\nS = 0\nDO I = 10, 1, -1\nS = S + I\nENDDO\nEND\n",
        )
        .unwrap();
        let Stmt::For { step, .. } = &m.funcs[0].body[3] else {
            panic!("expected DO");
        };
        assert_eq!(*step, -1);
    }
}
