//! Figure 2: the `tomcatv` case study — the code fragment that dominates
//! execution, annotated with edge frequencies, plus how each predictor
//! handles its branches (§5.2.1's analysis of why the heuristics go wrong
//! on the Alpha while the profile-based bound stays near zero).

use std::fmt::Write as _;

use esp_heur::{Aphc, BranchCtx, Btfnt};
use esp_ir::{BlockId, Terminator};

use crate::data::BenchData;

/// Render the Figure 2 case study for a compiled-and-profiled benchmark
/// (the `repro_tables` binary passes the `tomcatv` analogue).
pub fn fig2(data: &BenchData) -> String {
    // Find the function with the most executed conditional branches.
    let mut per_func: Vec<(esp_ir::FuncId, u64)> = Vec::new();
    for site in data.prog.branch_sites() {
        let c = data.profile.counts(site).map_or(0, |c| c.executed);
        match per_func.iter_mut().find(|(f, _)| *f == site.func) {
            Some((_, tot)) => *tot += c,
            None => per_func.push((site.func, c)),
        }
    }
    let Some(&(hot_func, _)) = per_func.iter().max_by_key(|(_, c)| *c) else {
        return "no conditional branches executed".to_string();
    };
    let func = data.prog.func(hot_func);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: dominant code fragment of `{}` — function `{}`",
        data.bench.name, func.name
    );
    let _ = writeln!(
        out,
        "(block execution counts and branch behaviour from the profiled run)\n"
    );

    // Print the hottest blocks with their branch statistics.
    let mut hot_blocks: Vec<(BlockId, u64)> = func
        .iter_blocks()
        .map(|(id, _)| (id, data.profile.block_count(hot_func, id)))
        .collect();
    hot_blocks.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    let show: Vec<BlockId> = {
        let mut v: Vec<BlockId> = hot_blocks.iter().take(6).map(|(b, _)| *b).collect();
        v.sort();
        v
    };

    let aphc = Aphc::table1_order();
    for id in show {
        let block = func.block(id);
        let count = data.profile.block_count(hot_func, id);
        let _ = writeln!(out, "{id}:  (executed {count} times)");
        for insn in &block.insns {
            let _ = writeln!(out, "    {insn}");
        }
        let _ = writeln!(out, "    {}", block.term);
        if let Terminator::CondBranch { .. } = block.term {
            let site = esp_ir::BranchId {
                func: hot_func,
                block: id,
            };
            if let Some(c) = data.profile.counts(site) {
                let taken_pct = 100.0 * c.taken as f64 / c.executed as f64;
                let ctx = BranchCtx::new(&data.prog, &data.analysis, site);
                let show_pred = |p: Option<bool>| match p {
                    Some(true) => "taken",
                    Some(false) => "not-taken",
                    None => "uncovered",
                };
                let _ = writeln!(
                    out,
                    "      ; actually taken {taken_pct:.1}% — BTFNT: {}, APHC: {}",
                    show_pred(Some(Btfnt.predict(&ctx))),
                    show_pred(aphc.predict(&ctx)),
                );
                if let Some((h, p)) = aphc.predict_with_source(&ctx) {
                    let _ = writeln!(
                        out,
                        "      ; decided by the {} heuristic (predicts {})",
                        h.name(),
                        show_pred(Some(p))
                    );
                }
            }
        }
    }
    out
}
