//! In-memory LRU cache keyed on encoded feature vectors.
//!
//! ESP feature vectors are heavily repeated in practice — a compiler asking
//! about every branch of a program hits the same few hundred static shapes
//! over and over — so a small exact-match cache absorbs most of the
//! network-forward cost. Keys are the *raw* row bits plus the mask (the
//! exact wire payload), so two requests hit the same entry iff the model
//! would compute the same probability.
//!
//! Implementation: a `HashMap` from key to `(value, recency stamp)` plus a
//! `BTreeMap` from stamp to key, giving `O(log n)` touch and exact
//! least-recently-used eviction with std-only containers.

use std::collections::{BTreeMap, HashMap};

/// Build the cache key for one request row: the raw IEEE-754 bits of every
/// feature followed by the mask bytes.
pub fn cache_key(row: &[f64], mask: &[bool]) -> Vec<u8> {
    let mut key = Vec::with_capacity(row.len() * 8 + mask.len());
    for &x in row {
        key.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    for &m in mask {
        key.push(m as u8);
    }
    key
}

/// Exact LRU cache from feature-vector keys to taken-probabilities.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<Vec<u8>, (f64, u64)>,
    recency: BTreeMap<u64, Vec<u8>>,
    tick: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` entries; `0` disables caching.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<f64> {
        let tick = self.next_tick();
        let (value, stamp) = self.map.get_mut(key)?;
        let old = std::mem::replace(stamp, tick);
        let moved = self.recency.remove(&old).expect("stamp tracked");
        self.recency.insert(tick, moved);
        Some(*value)
    }

    /// Insert (or refresh) a key, evicting the least-recently-used entry
    /// when full. A no-op when the cache is disabled.
    pub fn insert(&mut self, key: Vec<u8>, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some((v, stamp)) = self.map.get_mut(&key) {
            *v = value;
            let old = std::mem::replace(stamp, tick);
            let moved = self.recency.remove(&old).expect("stamp tracked");
            self.recency.insert(tick, moved);
            return;
        }
        if self.map.len() >= self.capacity {
            let (_, oldest) = self.recency.pop_first().expect("cache non-empty");
            self.map.remove(&oldest);
        }
        self.map.insert(key.clone(), (value, tick));
        self.recency.insert(tick, key);
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u8) -> Vec<u8> {
        vec![i; 4]
    }

    #[test]
    fn hit_miss_and_value_identity() {
        let mut c = LruCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), 0.25);
        assert_eq!(c.get(&key(1)), Some(0.25));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(key(1), 0.1);
        c.insert(key(2), 0.2);
        assert_eq!(c.get(&key(1)), Some(0.1)); // touch 1 → 2 is now LRU
        c.insert(key(3), 0.3);
        assert!(c.get(&key(2)).is_none(), "2 should have been evicted");
        assert_eq!(c.get(&key(1)), Some(0.1));
        assert_eq!(c.get(&key(3)), Some(0.3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert(key(1), 0.1);
        c.insert(key(1), 0.9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)), Some(0.9));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(key(1), 0.1);
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn cache_key_distinguishes_mask_and_nan_bits() {
        let a = cache_key(&[1.0, 2.0], &[true, true]);
        let b = cache_key(&[1.0, 2.0], &[true, false]);
        assert_ne!(a, b);
        // distinct NaN payloads are distinct keys (bit-level identity)
        let n1 = f64::from_bits(0x7FF8_0000_0000_0001);
        let n2 = f64::from_bits(0x7FF8_0000_0000_0002);
        assert_ne!(cache_key(&[n1], &[true]), cache_key(&[n2], &[true]));
    }
}
