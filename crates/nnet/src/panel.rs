//! Batch-major panel kernels: the autovectorizable multi-example forward
//! pass.
//!
//! The scalar kernel in [`crate::Mlp`] walks one example at a time; its
//! inner dot products are serial dependency chains (each `+=` waits on the
//! last), so LLVM cannot vectorize them without reassociating the sum —
//! which would change bits. The panel kernel keeps every per-example sum in
//! the *exact* reference order and instead vectorizes **across examples**:
//! a tile of [`PANEL_LANES`] rows is transposed into column-major scratch
//! (`xt[j * LANES + r]` = feature `j` of row `r`), and each hidden unit
//! accumulates a stack array of `LANES` independent lane sums,
//!
//! ```text
//! for j in 0..inputs:            // same j-ascending order as the scalar path
//!     for r in 0..LANES:         // independent lanes -> SIMD
//!         acc[r] += w[i][j] * xt[j][r]
//! ```
//!
//! Lane `r` performs precisely the additions the scalar kernel performs for
//! row `r`, in the same order, from the same zero accumulator — so the f64
//! panel kernel is **bitwise identical** to [`crate::Mlp::predict`], while
//! the `r` loop (no cross-iteration dependence) autovectorizes. Rows beyond
//! the last full tile fall through to the scalar kernel, which produces the
//! same bits by the same argument.
//!
//! The kernel is generic over [`f64`] and [`f32`] through the private
//! `PanelFloat` trait; the `f32` instantiation backs
//! [`crate::QuantizedMlp`]'s serving path and is bitwise self-consistent
//! with *its* scalar path (not with the f64 model — quantization changes
//! values by design).

use core::ops::{Add, AddAssign, Mul};

/// Examples per panel tile. Eight keeps the lane accumulator block
/// (`8 × f64` = one cache line) in registers while giving LLVM a full
/// SSE2/AVX vector per unrolled step; the remainder path handles
/// `rows % PANEL_LANES` scalar rows.
pub const PANEL_LANES: usize = 8;

/// Caller-owned scratch for the panel kernels: the transposed input tile,
/// the batch-major hidden activations, and a spare hidden buffer for the
/// scalar remainder rows. Grows to the model's shape once and is reused
/// across calls — the hot loop performs no heap allocation after warm-up.
#[derive(Debug, Default, Clone)]
pub struct PanelScratch<T = f64> {
    /// Column-major input tile: `xt[j * PANEL_LANES + r]`.
    pub(crate) xt: Vec<T>,
    /// Batch-major hidden activations: `h[i * PANEL_LANES + r]`.
    pub(crate) h: Vec<T>,
    /// Hidden scratch for the scalar remainder path.
    pub(crate) tail: Vec<T>,
}

impl<T> PanelScratch<T> {
    /// Fresh empty scratch; buffers grow on first use.
    pub const fn new() -> Self {
        PanelScratch {
            xt: Vec::new(),
            h: Vec::new(),
            tail: Vec::new(),
        }
    }
}

/// The two element types the panel kernel is instantiated at. Sealed to the
/// crate: the contract ("`squash` must match the corresponding scalar
/// kernel's output step bit for bit") is an internal invariant.
pub(crate) trait PanelFloat:
    Copy + PartialEq + AddAssign + Add<Output = Self> + Mul<Output = Self> + std::fmt::Debug
{
    /// Additive identity — the accumulator start value, as in the scalar path.
    const ZERO: Self;
    /// Narrow (or pass through) one input feature.
    fn cast(x: f64) -> Self;
    /// `tanh` at this precision.
    fn tanh_(self) -> Self;
    /// The output squash `½·tanh(z) + ½`, computed at this precision and
    /// only then widened to `f64` — bit-for-bit the scalar kernel's step.
    fn squash(self) -> f64;
}

impl PanelFloat for f64 {
    const ZERO: Self = 0.0;
    #[inline]
    fn cast(x: f64) -> f64 {
        x
    }
    #[inline]
    fn tanh_(self) -> f64 {
        self.tanh()
    }
    #[inline]
    fn squash(self) -> f64 {
        0.5 * self.tanh() + 0.5
    }
}

impl PanelFloat for f32 {
    const ZERO: Self = 0.0;
    #[inline]
    fn cast(x: f64) -> f32 {
        x as f32
    }
    #[inline]
    fn tanh_(self) -> f32 {
        self.tanh()
    }
    #[inline]
    fn squash(self) -> f64 {
        (0.5 * self.tanh() + 0.5) as f64
    }
}

/// Forward one full tile of [`PANEL_LANES`] rows starting at row `base` of
/// the row-major `panel`, pushing one probability per row onto `out`.
/// `params` is the flat `[w rows | b | v | a]` buffer at the kernel's
/// precision. Each lane reproduces the scalar summation order exactly; see
/// the module docs for why that makes the f64 instantiation bitwise
/// identical to the scalar path.
pub(crate) fn panel_tile<T: PanelFloat>(
    params: &[T],
    inputs: usize,
    hidden: usize,
    panel: &[f64],
    base: usize,
    scratch: &mut PanelScratch<T>,
    out: &mut Vec<f64>,
) {
    const L: usize = PANEL_LANES;
    debug_assert!(panel.len() >= (base + L) * inputs);

    // Transpose the tile: xt[j*L + r] = row (base+r), feature j.
    scratch.xt.resize(inputs * L, T::ZERO);
    let xt = scratch.xt.as_mut_slice();
    for r in 0..L {
        let row = &panel[(base + r) * inputs..(base + r + 1) * inputs];
        for (j, &x) in row.iter().enumerate() {
            xt[j * L + r] = T::cast(x);
        }
    }

    if hidden == 0 {
        let mut z = [T::ZERO; L];
        for (col, &v) in xt.chunks_exact(L).zip(&params[..inputs]) {
            for r in 0..L {
                z[r] += v * col[r];
            }
        }
        let a = params[inputs];
        for zr in z {
            out.push((zr + a).squash());
        }
        return;
    }

    let b_off = hidden * inputs;
    let v_off = b_off + hidden;
    scratch.h.resize(hidden * L, T::ZERO);
    for i in 0..hidden {
        let wrow = &params[i * inputs..(i + 1) * inputs];
        let mut acc = [T::ZERO; L];
        for (col, &w) in scratch.xt.chunks_exact(L).zip(wrow) {
            for r in 0..L {
                acc[r] += w * col[r];
            }
        }
        let b = params[b_off + i];
        let hrow = &mut scratch.h[i * L..(i + 1) * L];
        for (hr, &ar) in hrow.iter_mut().zip(acc.iter()) {
            *hr = (ar + b).tanh_();
        }
    }
    let mut z = [T::ZERO; L];
    for i in 0..hidden {
        let v = params[v_off + i];
        let hrow = &scratch.h[i * L..(i + 1) * L];
        for r in 0..L {
            z[r] += v * hrow[r];
        }
    }
    let a = params[v_off + hidden];
    for zr in z {
        out.push((zr + a).squash());
    }
}
