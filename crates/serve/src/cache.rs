//! In-memory LRU cache keyed on encoded feature vectors.
//!
//! ESP feature vectors are heavily repeated in practice — a compiler asking
//! about every branch of a program hits the same few hundred static shapes
//! over and over — so a small exact-match cache absorbs most of the
//! network-forward cost. Keys are the *raw* row bits plus the mask (the
//! exact wire payload), so two requests hit the same entry iff the model
//! would compute the same probability.
//!
//! Implementation: a `HashMap` from key to slab index plus an index-linked
//! list threaded through the slab, giving `O(1)` lookup, touch, insert and
//! exact least-recently-used eviction with std-only containers. Evicted
//! slots go on a free list and their key buffers are reused by the next
//! insert, so a warmed cache at capacity stops allocating for evictions.
//! Hot-path lookups take a borrowed `&[u8]` key — pair with
//! [`cache_key_into`] and a caller-owned scratch buffer to make the whole
//! probe path allocation-free.

use std::collections::HashMap;

/// Build the cache key for one request row: the raw IEEE-754 bits of every
/// feature followed by the mask bytes.
pub fn cache_key(row: &[f64], mask: &[bool]) -> Vec<u8> {
    let mut key = Vec::with_capacity(row.len() * 8 + mask.len());
    cache_key_into(&mut key, row, mask);
    key
}

/// Write the cache key for one request row into a caller-owned buffer,
/// clearing it first. Reusing one buffer across rows keeps the hot lookup
/// path free of allocation (the buffer grows once to the row size and is
/// then recycled).
pub fn cache_key_into(buf: &mut Vec<u8>, row: &[f64], mask: &[bool]) {
    buf.clear();
    buf.reserve(row.len() * 8 + mask.len());
    for &x in row {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    for &m in mask {
        buf.push(m as u8);
    }
}

/// Sentinel slab index meaning "no link".
const NIL: usize = usize::MAX;

/// One slab slot: a key/value pair threaded into the recency list.
#[derive(Debug)]
struct Slot {
    key: Vec<u8>,
    value: f64,
    /// Towards more-recently-used.
    prev: usize,
    /// Towards less-recently-used.
    next: usize,
}

/// Exact LRU cache from feature-vector keys to taken-probabilities.
///
/// All operations are `O(1)`: the recency order is an index-linked list
/// over a slab of slots, with `head` the most-recently-used entry and
/// `tail` the eviction candidate.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<Vec<u8>, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruCache {
    /// A cache holding at most `capacity` entries; `0` disables caching.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries this cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a key, marking it most-recently-used on a hit. Allocates
    /// nothing: the key is borrowed and the touch relinks slab indices.
    pub fn get(&mut self, key: &[u8]) -> Option<f64> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].value)
    }

    /// Insert (or refresh) a key, evicting the least-recently-used entry
    /// when full. A no-op when the cache is disabled. Takes the key by
    /// slice: a refresh or an eviction-reusing insert copies into an
    /// existing buffer instead of allocating.
    pub fn insert(&mut self, key: &[u8], value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(key) {
            self.slots[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full cache has a tail");
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx];
                slot.key.clear();
                slot.key.extend_from_slice(key);
                slot.value = value;
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.to_vec(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(self.slots[idx].key.clone(), idx);
        self.push_front(idx);
    }

    /// Detach `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    /// Link `idx` in as most-recently-used.
    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u8) -> Vec<u8> {
        vec![i; 4]
    }

    #[test]
    fn hit_miss_and_value_identity() {
        let mut c = LruCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(&key(1), 0.25);
        assert_eq!(c.get(&key(1)), Some(0.25));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(&key(1), 0.1);
        c.insert(&key(2), 0.2);
        assert_eq!(c.get(&key(1)), Some(0.1)); // touch 1 → 2 is now LRU
        c.insert(&key(3), 0.3);
        assert!(c.get(&key(2)).is_none(), "2 should have been evicted");
        assert_eq!(c.get(&key(1)), Some(0.1));
        assert_eq!(c.get(&key(3)), Some(0.3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert(&key(1), 0.1);
        c.insert(&key(1), 0.9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)), Some(0.9));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(&key(1), 0.1);
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn cache_key_distinguishes_mask_and_nan_bits() {
        let a = cache_key(&[1.0, 2.0], &[true, true]);
        let b = cache_key(&[1.0, 2.0], &[true, false]);
        assert_ne!(a, b);
        // distinct NaN payloads are distinct keys (bit-level identity)
        let n1 = f64::from_bits(0x7FF8_0000_0000_0001);
        let n2 = f64::from_bits(0x7FF8_0000_0000_0002);
        assert_ne!(cache_key(&[n1], &[true]), cache_key(&[n2], &[true]));
    }

    #[test]
    fn cache_key_into_reuses_the_buffer() {
        let mut buf = Vec::new();
        cache_key_into(&mut buf, &[1.0, 2.0], &[true, false]);
        assert_eq!(buf, cache_key(&[1.0, 2.0], &[true, false]));
        let cap = buf.capacity();
        cache_key_into(&mut buf, &[3.0], &[true]);
        assert_eq!(buf, cache_key(&[3.0], &[true]));
        assert_eq!(buf.capacity(), cap, "smaller key must not reallocate");
    }

    #[test]
    fn slab_stays_bounded_under_churn() {
        // A capacity-2 cache driven through hundreds of distinct keys must
        // recycle evicted slots rather than growing the slab.
        let mut c = LruCache::new(2);
        for i in 0..=255u8 {
            c.insert(&key(i), i as f64);
        }
        assert_eq!(c.len(), 2);
        assert!(c.slots.len() <= 3, "slab grew: {} slots", c.slots.len());
        assert_eq!(c.get(&key(255)), Some(255.0));
        assert_eq!(c.get(&key(254)), Some(254.0));
        assert!(c.get(&key(0)).is_none());
    }

    #[test]
    fn recency_order_survives_interleaved_ops() {
        // Exhaustive-ish interleaving against a naive reference model.
        let mut c = LruCache::new(3);
        let mut reference: Vec<(Vec<u8>, f64)> = Vec::new(); // MRU first
        let mut state = 0x1234_5678u64;
        for step in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = key((state >> 33) as u8 % 8);
            if step % 3 == 0 {
                let v = step as f64;
                c.insert(&k, v);
                reference.retain(|(rk, _)| rk != &k);
                reference.insert(0, (k, v));
                reference.truncate(3);
            } else {
                let got = c.get(&k);
                let want = reference.iter().position(|(rk, _)| rk == &k);
                match want {
                    Some(pos) => {
                        let entry = reference.remove(pos);
                        assert_eq!(got, Some(entry.1), "step {step}");
                        reference.insert(0, entry);
                    }
                    None => assert_eq!(got, None, "step {step}"),
                }
            }
            assert_eq!(c.len(), reference.len(), "step {step}");
        }
    }
}
