//! A directory-backed model registry: `root/<name>/<version>.espm`.
//!
//! Versions are plain integers allocated monotonically by [`Registry::publish`];
//! "latest" is simply the highest number present. The registry never parses
//! anything it does not recognise — stray files are ignored by `list`/`versions`
//! and never deleted by `gc`.

use std::path::{Path, PathBuf};

use crate::error::ArtifactError;
use crate::format::{AnyArtifact, ModelArtifact, ModelMeta};

/// Handle on a registry root directory (created lazily on first save).
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

/// One model line in [`Registry::list`] output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Model name (the subdirectory).
    pub name: String,
    /// Versions on disk, ascending.
    pub versions: Vec<u32>,
}

/// What [`Registry::inspect`] reports without handing back the full model.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactInfo {
    /// Model name.
    pub name: String,
    /// Inspected version.
    pub version: u32,
    /// File path on disk.
    pub path: PathBuf,
    /// File size in bytes.
    pub file_len: u64,
    /// Training provenance from the payload.
    pub meta: ModelMeta,
    /// Input dimensionality.
    pub dim: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Whether a heuristic rate table is present.
    pub has_rates: bool,
    /// Weight precision in bits: 64 for trained networks, 32 for quantized
    /// serving artifacts.
    pub precision_bits: u32,
}

fn valid_name(name: &str) -> Result<(), ArtifactError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(ArtifactError::Malformed(format!(
            "invalid model name {name:?}: use ASCII letters, digits, '-', '_', '.'"
        )))
    }
}

impl Registry {
    /// Open (without touching the filesystem) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Registry { root: root.into() }
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of one model version: `root/<name>/<version>.espm`.
    pub fn path(&self, name: &str, version: u32) -> Result<PathBuf, ArtifactError> {
        valid_name(name)?;
        Ok(self.root.join(name).join(format!("{version}.espm")))
    }

    /// Versions of `name` on disk, ascending. A missing model directory is
    /// an empty list, not an error.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, ArtifactError> {
        valid_name(name)?;
        let dir = self.root.join(name);
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("espm") {
                continue;
            }
            if let Some(v) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<u32>().ok())
            {
                out.push(v);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Write `artifact` as an explicit version of `name`, returning the file
    /// path. Overwrites that version if it already exists.
    pub fn save(
        &self,
        name: &str,
        version: u32,
        artifact: &ModelArtifact,
    ) -> Result<PathBuf, ArtifactError> {
        let path = self.path(name, version)?;
        artifact.save(&path)?;
        Ok(path)
    }

    /// Write `artifact` as the next free version of `name` (1 for a new
    /// model) and return the allocated version. Safe against concurrent
    /// publishers: the version file is claimed with `create_new` before
    /// anything is written, so two racing publishes get distinct numbers
    /// instead of one silently overwriting the other.
    pub fn publish(&self, name: &str, artifact: &ModelArtifact) -> Result<u32, ArtifactError> {
        let mut next = self.versions(name)?.last().map_or(1, |v| v + 1);
        loop {
            let path = self.path(name, next)?;
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    next += 1;
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            // The number is claimed; fill the file atomically (temp +
            // rename, via `save`), dropping the claim if the write fails.
            return match artifact.save(&path) {
                Ok(()) => Ok(next),
                Err(e) => {
                    let _ = std::fs::remove_file(&path);
                    Err(e)
                }
            };
        }
    }

    /// [`Registry::save`] for either artifact kind.
    pub fn save_any(
        &self,
        name: &str,
        version: u32,
        artifact: &AnyArtifact,
    ) -> Result<PathBuf, ArtifactError> {
        let path = self.path(name, version)?;
        artifact.save(&path)?;
        Ok(path)
    }

    /// [`Registry::load`] for either artifact kind: quantized (f32) serving
    /// artifacts load alongside full-precision ones.
    pub fn load_any(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<(u32, AnyArtifact), ArtifactError> {
        let version = match version {
            Some(v) => v,
            None => *self.versions(name)?.last().ok_or_else(|| {
                ArtifactError::Malformed(format!("model {name:?} has no versions"))
            })?,
        };
        let artifact = AnyArtifact::load(&self.path(name, version)?)?;
        Ok((version, artifact))
    }

    /// Load one version of `name`, or the latest when `version` is `None`.
    /// Returns the resolved version alongside the artifact.
    pub fn load(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<(u32, ModelArtifact), ArtifactError> {
        let version = match version {
            Some(v) => v,
            None => *self.versions(name)?.last().ok_or_else(|| {
                ArtifactError::Malformed(format!("model {name:?} has no versions"))
            })?,
        };
        let artifact = ModelArtifact::load(&self.path(name, version)?)?;
        Ok((version, artifact))
    }

    /// Every model in the registry with its versions, sorted by name. A
    /// missing root is an empty registry.
    pub fn list(&self) -> Result<Vec<RegistryEntry>, ArtifactError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
                continue;
            };
            if valid_name(&name).is_err() {
                continue;
            }
            let versions = self.versions(&name)?;
            if !versions.is_empty() {
                out.push(RegistryEntry { name, versions });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Load a version's header-level facts (provenance, topology, file size,
    /// weight precision) for display. Works for either artifact kind.
    pub fn inspect(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<ArtifactInfo, ArtifactError> {
        let (version, artifact) = self.load_any(name, version)?;
        let path = self.path(name, version)?;
        Ok(ArtifactInfo {
            name: name.to_string(),
            version,
            file_len: std::fs::metadata(&path)?.len(),
            path,
            meta: artifact.meta().clone(),
            dim: artifact.dim(),
            hidden: artifact.hidden(),
            has_rates: artifact.has_rates(),
            precision_bits: artifact.precision_bits(),
        })
    }

    /// Delete all but the newest `keep` versions of `name`; returns the
    /// paths removed. `keep == 0` removes every version.
    pub fn gc(&self, name: &str, keep: usize) -> Result<Vec<PathBuf>, ArtifactError> {
        let versions = self.versions(name)?;
        let cut = versions.len().saturating_sub(keep);
        let mut removed = Vec::new();
        for &v in &versions[..cut] {
            let path = self.path(name, v)?;
            std::fs::remove_file(&path)?;
            removed.push(path);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_registry(tag: &str) -> Registry {
        let dir = std::env::temp_dir().join(format!(
            "esp-artifact-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Registry::open(dir)
    }

    #[test]
    fn publish_load_list_gc_cycle() {
        let reg = temp_registry("cycle");
        let a1 = ModelArtifact::synthetic(6, 3, 1);
        let a2 = ModelArtifact::synthetic(6, 3, 2);
        assert_eq!(reg.publish("demo", &a1).unwrap(), 1);
        assert_eq!(reg.publish("demo", &a2).unwrap(), 2);
        assert_eq!(reg.versions("demo").unwrap(), vec![1, 2]);

        let (v, latest) = reg.load("demo", None).unwrap();
        assert_eq!(v, 2);
        assert_eq!(latest, a2);
        let (_, first) = reg.load("demo", Some(1)).unwrap();
        assert_eq!(first, a1);

        let listing = reg.list().unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].name, "demo");

        let info = reg.inspect("demo", None).unwrap();
        assert_eq!((info.version, info.dim, info.hidden), (2, 6, 3));
        assert!(info.has_rates);
        assert!(info.file_len > 0);
        assert_eq!(info.precision_bits, 64);

        let removed = reg.gc("demo", 1).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(reg.versions("demo").unwrap(), vec![2]);
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn empty_registry_lists_nothing_and_load_fails_typed() {
        let reg = temp_registry("empty");
        assert!(reg.list().unwrap().is_empty());
        assert!(reg.versions("ghost").unwrap().is_empty());
        assert!(matches!(
            reg.load("ghost", None),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn publish_never_overwrites_an_existing_version() {
        let reg = temp_registry("claimed");
        // A pre-existing version file — e.g. another publisher's claim still
        // being filled — is skipped, not overwritten.
        let claimed = reg.path("demo", 1).unwrap();
        std::fs::create_dir_all(claimed.parent().unwrap()).unwrap();
        std::fs::write(&claimed, b"").unwrap();
        let a = ModelArtifact::synthetic(4, 2, 9);
        assert_eq!(reg.publish("demo", &a).unwrap(), 2);
        assert_eq!(std::fs::read(&claimed).unwrap(), b"", "claim untouched");
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn concurrent_publishes_allocate_distinct_versions() {
        let reg = std::sync::Arc::new(temp_registry("race"));
        let n = 4u64;
        let handles: Vec<_> = (0..n)
            .map(|seed| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    reg.publish("demo", &ModelArtifact::synthetic(4, 2, seed))
                        .unwrap()
                })
            })
            .collect();
        let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4], "no version lost or duplicated");
        assert_eq!(reg.versions("demo").unwrap(), vec![1, 2, 3, 4]);
        // every published file is a complete, loadable artifact
        for v in 1..=4 {
            reg.load("demo", Some(v)).expect("complete artifact");
        }
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn quantized_artifacts_round_trip_through_the_registry() {
        let reg = temp_registry("quant");
        let a = ModelArtifact::synthetic(6, 3, 11);
        let q = AnyArtifact::F32(a.quantize());
        reg.save_any("demo-f32", 1, &q).unwrap();
        let (v, back) = reg.load_any("demo-f32", None).unwrap();
        assert_eq!(v, 1);
        assert_eq!(back, q);
        // the f64-only loader refuses it with a typed error
        assert!(matches!(
            reg.load("demo-f32", Some(1)),
            Err(ArtifactError::Malformed(_))
        ));
        let info = reg.inspect("demo-f32", None).unwrap();
        assert_eq!(info.precision_bits, 32);
        assert_eq!((info.dim, info.hidden), (6, 3));
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn hostile_names_are_rejected() {
        let reg = temp_registry("names");
        for bad in ["", "..", "a/b", "a\\b", ".hidden", "spaced name"] {
            assert!(
                matches!(reg.path(bad, 1), Err(ArtifactError::Malformed(_))),
                "name {bad:?} should be rejected"
            );
        }
        assert!(reg.path("ok-model_v1.2", 3).is_ok());
    }
}
