//! Span/event tracing: the [`Recorder`] facade, the process-wide collector
//! of per-thread rings, and the Chrome trace-event JSON renderer.
//!
//! Timestamps are microseconds from a process-wide monotonic epoch
//! ([`std::time::Instant`] taken on first use). Thread ids are small
//! integers handed out in first-use order — the main thread is usually 0,
//! pool workers follow in spawn order. A thread that exits hands its ring
//! (and thus its trace track id) back to a free list for the next thread
//! to adopt, so sequential short-lived workers share tracks and the ring
//! registry stays bounded by peak thread concurrency.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::ring::{TraceRing, DEFAULT_CAPACITY};

/// One trace-event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with enough digits to round-trip).
    F64(f64),
    /// Free-form text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! arg_from {
    ($($t:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$t> for ArgValue {
            fn from(v: $t) -> Self { ArgValue::$variant(v as $conv) }
        })+
    };
}
arg_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
          i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of trace event a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: `ts_us` is the start, `dur_us` the duration
    /// (trace-event phase `"X"`).
    Complete,
    /// A point-in-time event (trace-event phase `"i"`).
    Instant,
}

/// One recorded event, as stored in the per-thread rings.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`"fold"`, `"epoch"`, …).
    pub name: &'static str,
    /// Category — the emitting layer (`"train"`, `"runtime"`, `"eval"`, …).
    pub cat: &'static str,
    /// Complete span or instant.
    pub kind: EventKind,
    /// Microseconds since the trace epoch (span start for completes).
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Small integer thread id, first-use order.
    pub tid: u64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Collector {
    epoch: Instant,
    rings: Mutex<Vec<Arc<TraceRing>>>,
    /// Rings whose producer thread exited, ready for adoption by the next
    /// thread that records (capacity permitting). Recycling bounds the
    /// registry at the peak number of *concurrent* traced threads —
    /// without it, every short-lived `parallel_map` worker would register
    /// a fresh permanent ring and a long traced run would leak one ring
    /// per worker per region.
    free: Mutex<Vec<Arc<TraceRing>>>,
    next_tid: AtomicU64,
    capacity: AtomicUsize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
        capacity: AtomicUsize::new(DEFAULT_CAPACITY),
    })
}

/// Thread-local handle on this thread's ring. Dropping it (at thread exit)
/// hands the ring back to the collector's free list, where the next thread
/// to record can adopt it — the handoff through the free-list mutex orders
/// the old producer's final push before the new producer's first, so the
/// ring's SPSC protocol holds across the ownership change.
struct RingHolder(Arc<TraceRing>);

impl Drop for RingHolder {
    fn drop(&mut self) {
        if let Some(c) = COLLECTOR.get() {
            c.free
                .lock()
                .expect("free list poisoned")
                .push(Arc::clone(&self.0));
        }
    }
}

thread_local! {
    static LOCAL_RING: OnceCell<RingHolder> = const { OnceCell::new() };
}

/// Microseconds since the trace epoch.
pub fn now_us() -> u64 {
    collector().epoch.elapsed().as_micros() as u64
}

/// Turn tracing on with the default per-thread ring capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Turn tracing on; threads that record their *first* event after this call
/// get rings of `capacity` slots (already-registered rings keep theirs).
pub fn enable_with_capacity(capacity: usize) {
    collector()
        .capacity
        .store(capacity.max(1), Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn tracing off. Spans already open still record when dropped; new
/// [`span!`](crate::span)/[`instant!`](crate::instant) sites become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether tracing is currently enabled (one relaxed load — this is the
/// whole disabled-path cost of a span site).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Total events dropped so far because some thread's ring was full. Rings
/// are recycled, never discarded, so drops by exited threads stay counted.
pub fn dropped() -> u64 {
    let Some(c) = COLLECTOR.get() else { return 0 };
    let rings = c.rings.lock().expect("ring registry poisoned");
    rings.iter().map(|r| r.dropped()).sum()
}

/// Number of per-thread rings currently registered. Bounded by the peak
/// number of concurrent traced threads (exited threads' rings are recycled
/// through a free list, not leaked). Exposed for tests and diagnostics of
/// long-running traced processes.
pub fn registered_rings() -> usize {
    let Some(c) = COLLECTOR.get() else { return 0 };
    c.rings.lock().expect("ring registry poisoned").len()
}

fn push(event: TraceEvent) {
    LOCAL_RING.with(|cell| {
        let holder = cell.get_or_init(|| {
            let c = collector();
            let capacity = c.capacity.load(Ordering::Relaxed);
            // Adopt the ring of an exited thread when one of the right
            // capacity is free: this thread inherits its trace track id,
            // and the registry stays bounded by peak thread concurrency.
            let mut free = c.free.lock().expect("free list poisoned");
            let recycled = free
                .iter()
                .position(|r| r.capacity() == capacity)
                .map(|i| free.swap_remove(i));
            drop(free);
            RingHolder(recycled.unwrap_or_else(|| {
                let ring = Arc::new(TraceRing::new(
                    c.next_tid.fetch_add(1, Ordering::Relaxed),
                    capacity,
                ));
                c.rings
                    .lock()
                    .expect("ring registry poisoned")
                    .push(Arc::clone(&ring));
                ring
            }))
        });
        let mut event = event;
        event.tid = holder.0.tid();
        holder.0.push(event);
    });
}

/// Drain every thread's ring and return the events sorted by timestamp.
/// Safe to call while producers are still recording: each event is either
/// fully drained now or fully drained by a later call, never torn. The
/// registry lock is held across the whole drain, which makes this the
/// single consumer the rings' SPSC protocol requires — concurrent `drain`
/// calls serialize instead of racing each other over the same slots.
pub fn drain() -> Vec<TraceEvent> {
    let Some(c) = COLLECTOR.get() else {
        return Vec::new();
    };
    let rings = c.rings.lock().expect("ring registry poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    drop(rings);
    out.sort_by_key(|e| (e.ts_us, e.tid, e.dur_us));
    out
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn render_event(e: &TraceEvent, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
        e.name,
        e.cat,
        match e.kind {
            EventKind::Complete => "X",
            EventKind::Instant => "i",
        },
        e.ts_us,
    ));
    match e.kind {
        EventKind::Complete => out.push_str(&format!("\"dur\":{},", e.dur_us)),
        EventKind::Instant => out.push_str("\"s\":\"t\","),
    }
    out.push_str(&format!("\"pid\":1,\"tid\":{}", e.tid));
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(k, out);
            out.push_str("\":");
            match v {
                ArgValue::U64(x) => out.push_str(&x.to_string()),
                ArgValue::I64(x) => out.push_str(&x.to_string()),
                ArgValue::F64(x) => {
                    if x.is_finite() {
                        out.push_str(&format!("{x:?}"))
                    } else {
                        out.push_str(&format!("\"{x}\""))
                    }
                }
                ArgValue::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
                ArgValue::Str(s) => {
                    out.push('"');
                    escape_json(s, out);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Render events as a Chrome trace-event JSON array, one event per line —
/// a file `chrome://tracing` and Perfetto open directly, and that any JSON
/// parser accepts whole.
pub fn render_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        render_event(e, &mut out);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Drain the collector and write the trace to `path`; returns the number of
/// events written.
pub fn write_json(path: &std::path::Path) -> std::io::Result<usize> {
    let events = drain();
    std::fs::write(path, render_json(&events))?;
    Ok(events.len())
}

/// Merge several [`render_json`]-format trace files onto one Perfetto
/// timeline and write the union to `out`. Each input is `(label, path)`;
/// the events of input `i` are re-homed to pid `i + 1` and a
/// `process_name` metadata event carrying the label is prepended, so a
/// client trace and a server trace (both written with pid 1) show up as
/// two named process lanes sharing one clock axis. Returns the number of
/// trace events written (metadata excluded).
///
/// This is a line-based transform of our own writer's output — one event
/// object per line, `"pid":1` rendered before any `args` — not a general
/// JSON parser; feeding it traces from other producers is unsupported.
pub fn merge_json(
    inputs: &[(&str, &std::path::Path)],
    out: &std::path::Path,
) -> std::io::Result<usize> {
    let mut merged = String::from("[\n");
    let mut lines: Vec<String> = Vec::new();
    for (i, (label, path)) in inputs.iter().enumerate() {
        let pid = i + 1;
        let mut name = String::new();
        escape_json(label, &mut name);
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        let text = std::fs::read_to_string(path)?;
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.is_empty() || line == "[" || line == "]" {
                continue;
            }
            // `"pid":1` renders before `args` and quotes inside args are
            // escaped, so the first occurrence is always the event's own
            // pid field.
            lines.push(line.replacen("\"pid\":1,", &format!("\"pid\":{pid},"), 1));
        }
    }
    let events = lines.len() - inputs.len();
    for (i, line) in lines.iter().enumerate() {
        merged.push_str(line);
        if i + 1 < lines.len() {
            merged.push(',');
        }
        merged.push('\n');
    }
    merged.push_str("]\n");
    std::fs::write(out, merged)?;
    Ok(events)
}

/// The recording facade. `Recorder::current()` snapshots the global
/// enabled flag once; every operation on a disabled recorder is a no-op
/// that takes no timestamp and allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct Recorder {
    on: bool,
}

impl Recorder {
    /// A recorder reflecting the global tracing flag right now.
    #[inline]
    pub fn current() -> Self {
        Recorder { on: enabled() }
    }

    /// A recorder that never records, regardless of the global flag.
    #[inline]
    pub const fn disabled() -> Self {
        Recorder { on: false }
    }

    /// Whether this recorder records. Use to skip argument construction.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Open a span; prefer the [`span!`](crate::span) macro, which builds
    /// `args` lazily.
    pub fn span(
        &self,
        cat: &'static str,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard {
        if !self.on {
            return SpanGuard { rec: None };
        }
        SpanGuard {
            rec: Some(TraceEvent {
                name,
                cat,
                kind: EventKind::Complete,
                ts_us: now_us(),
                dur_us: 0,
                tid: 0, // stamped at push time
                args,
            }),
        }
    }

    /// Record an instant event; prefer the [`instant!`](crate::instant)
    /// macro, which builds `args` lazily.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.on {
            return;
        }
        push(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            ts_us: now_us(),
            dur_us: 0,
            tid: 0,
            args,
        });
    }
}

/// An open span. Dropping it records a complete event covering the guard's
/// lifetime. A guard from a disabled recorder does nothing, forever.
#[derive(Debug)]
#[must_use = "a span records when the guard is dropped"]
pub struct SpanGuard {
    rec: Option<TraceEvent>,
}

impl SpanGuard {
    /// Attach an argument to the span (no-op, allocation-free on a disabled
    /// guard — but prefer passing cheap values; build strings only behind
    /// [`SpanGuard::is_enabled`]).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(rec) = &mut self.rec {
            rec.args.push((key, value.into()));
        }
    }

    /// Whether this guard will record (mirrors the recorder it came from).
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut rec) = self.rec.take() {
            rec.dur_us = now_us().saturating_sub(rec.ts_us);
            push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace tests share the process-global collector; serialize them.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_recorder_emits_nothing() {
        let _g = locked();
        disable();
        let _ = drain();
        {
            let mut s = Recorder::current().span("t", "quiet", Vec::new());
            s.arg("k", 1u64);
            assert!(!s.is_enabled());
        }
        Recorder::disabled().instant("t", "quiet", Vec::new());
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_and_instants_round_trip_through_the_collector() {
        let _g = locked();
        let _ = drain();
        enable();
        {
            let mut s = crate::span!("t", "outer", n = 3usize);
            s.arg("extra", "hi");
            crate::instant!("t", "tick", v = 1.5f64);
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 2);
        let tick = events.iter().find(|e| e.name == "tick").expect("tick");
        assert_eq!(tick.kind, EventKind::Instant);
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        assert_eq!(outer.kind, EventKind::Complete);
        assert_eq!(outer.args[0], ("n", ArgValue::U64(3)));
        assert_eq!(outer.args[1], ("extra", ArgValue::Str("hi".into())));
        // the instant happened inside the span's lifetime
        assert!(tick.ts_us >= outer.ts_us);
        assert!(tick.ts_us <= outer.ts_us + outer.dur_us);
    }

    #[test]
    fn rendered_json_is_loadable_shape() {
        let events = vec![
            TraceEvent {
                name: "fold",
                cat: "eval",
                kind: EventKind::Complete,
                ts_us: 10,
                dur_us: 25,
                tid: 2,
                args: vec![
                    ("lang", ArgValue::Str("C\"\\".into())),
                    ("idx", ArgValue::U64(4)),
                    ("ok", ArgValue::Bool(true)),
                    ("rate", ArgValue::F64(0.25)),
                ],
            },
            TraceEvent {
                name: "tick",
                cat: "t",
                kind: EventKind::Instant,
                ts_us: 12,
                dur_us: 0,
                tid: 0,
                args: Vec::new(),
            },
        ];
        let json = render_json(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""dur":25"#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""s":"t""#));
        assert!(json.contains(r#""lang":"C\"\\""#));
        assert!(json.contains(r#""rate":0.25"#));
        // two lines per event plus the brackets
        assert_eq!(json.lines().count(), 4);
    }

    #[test]
    fn exited_threads_rings_are_recycled_not_leaked() {
        let _g = locked();
        let _ = drain();
        enable_with_capacity(512);
        let before = registered_rings();
        const WORKERS: u64 = 16;
        for w in 0..WORKERS {
            std::thread::spawn(move || {
                for s in 0..4u64 {
                    crate::instant!("t", "churn", w = w, s = s);
                }
            })
            .join()
            .expect("worker finished");
        }
        disable();
        // Sequential workers adopt the previous worker's ring from the
        // free list, so 16 threads grow the registry by at most one ring
        // — the leak the long-running traced serve scenario would hit.
        assert!(
            registered_rings() <= before + 1,
            "rings recycled, not one per thread: {before} -> {}",
            registered_rings()
        );
        let events = drain();
        assert_eq!(
            events.iter().filter(|e| e.name == "churn").count(),
            (WORKERS * 4) as usize,
            "recycling loses no events"
        );
        // All workers shared one track id (they never overlapped in time).
        let tids: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.name == "churn")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 1, "sequential workers share a trace track");
    }

    #[test]
    fn merge_json_rehomes_pids_and_labels_processes() {
        let dir = std::env::temp_dir().join(format!("esp_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let mk = |name: &'static str, ts: u64| TraceEvent {
            name,
            cat: "t",
            kind: EventKind::Complete,
            ts_us: ts,
            dur_us: 5,
            tid: 1,
            args: vec![("note", ArgValue::Str("\"pid\":1,\"tid\":".into()))],
        };
        let client = dir.join("client.json");
        let server = dir.join("server.json");
        std::fs::write(&client, render_json(&[mk("send", 10)])).expect("client trace");
        std::fs::write(&server, render_json(&[mk("recv", 12), mk("compute", 13)]))
            .expect("server trace");
        let out = dir.join("merged.json");
        let n = merge_json(&[("client", &client), ("server", &server)], &out)
            .expect("merge ok");
        assert_eq!(n, 3);
        let merged = std::fs::read_to_string(&out).expect("read merged");
        // Events re-homed per input; the decoy "pid":1 inside the escaped
        // string arg is untouched.
        assert!(merged.contains(r#""name":"send","cat":"t","ph":"X","ts":10,"dur":5,"pid":1"#));
        assert!(merged.contains(r#""name":"recv","cat":"t","ph":"X","ts":12,"dur":5,"pid":2"#));
        assert!(merged.contains(r#""note":"\"pid\":1,\"tid\":""#));
        // Process-name metadata rows label the lanes.
        assert!(merged.contains(r#""name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"client"}"#));
        assert!(merged.contains(r#""name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"server"}"#));
        // Still a well-formed one-event-per-line array: 5 rows + brackets.
        assert!(merged.starts_with("[\n") && merged.ends_with("]\n"));
        assert_eq!(merged.lines().count(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arg_value_conversions() {
        assert_eq!(ArgValue::from(3u32), ArgValue::U64(3));
        assert_eq!(ArgValue::from(-2i32), ArgValue::I64(-2));
        assert_eq!(ArgValue::from(7usize), ArgValue::U64(7));
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x".into()));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
    }
}
