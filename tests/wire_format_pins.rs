//! Pins the serialized-surface versions of the workspace: the `.espm`
//! artifact format and the serving wire protocol. The dynamic-predictor
//! sim (`esp-sim`) is an offline study — it introduced its own `.esptrace`
//! format but must not perturb either existing surface. A legitimate
//! layout change bumps the constant *and* this test together, so the bump
//! is always a reviewed, deliberate act.

#[test]
fn model_artifact_format_version_is_pinned() {
    assert_eq!(
        esp_artifact::FORMAT_VERSION,
        3,
        "`.espm` format version changed — update readers, writers and this pin together"
    );
}

#[test]
fn serve_protocol_version_is_pinned() {
    assert_eq!(
        esp_serve::protocol::PROTOCOL_VERSION,
        2,
        "serve wire protocol version changed — update client, server and this pin together"
    );
}

#[test]
fn esptrace_format_starts_at_version_one() {
    // The sim's own trace format: v1, `ESPT` magic, 20-byte header
    // (mirroring the `.espm` header layout).
    assert_eq!(esp_sim::TRACE_FORMAT_VERSION, 1);
    assert_eq!(&esp_sim::TRACE_MAGIC, b"ESPT");
    assert_eq!(esp_sim::TRACE_HEADER_LEN, 20);
}
