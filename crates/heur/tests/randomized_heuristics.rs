//! Randomized tests for the heuristic predictors over randomly generated
//! CFGs: APHC consistency, Dempster–Shafer algebra, and heuristic
//! well-definedness on arbitrary branch shapes, drawn from the in-tree
//! seeded PCG32 stream.

use esp_heur::{measure_rates, Aphc, BranchCtx, Btfnt, Dshc, Heuristic, HeuristicRates};
use esp_ir::{
    BlockId, BranchOp, FuncId, FunctionBuilder, Isa, Lang, Program, ProgramAnalysis,
};
use esp_runtime::Pcg32;

const CASES: u64 = 64;

/// Random CFG over `n` blocks, every block a conditional branch except a
/// final return block; some blocks get stores/calls to trigger the
/// successor-content heuristics.
#[derive(Debug, Clone)]
struct Shape {
    arms: Vec<(usize, usize, bool, bool)>, // (taken, not_taken, add_store, end_call)
}

fn random_shape(rng: &mut Pcg32) -> Shape {
    let n = rng.gen_range(1..10usize);
    let arms = (0..n)
        .map(|_| {
            (
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    Shape { arms }
}

fn for_random_shapes(base_seed: u64, mut check: impl FnMut(&Shape)) {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(base_seed.wrapping_add(case));
        check(&random_shape(&mut rng));
    }
}

fn build(shape: &Shape) -> Program {
    let n = shape.arms.len() + 1; // + return block
    let mut b = FunctionBuilder::new("main", 0, Lang::C);
    let c = b.fresh_reg();
    let buf = b.fresh_reg();
    for _ in 1..n {
        b.new_block();
    }
    b.push_load_imm(BlockId(0), c, 1);
    b.push(
        BlockId(0),
        esp_ir::Insn::AllocImm { dst: buf, words: 2 },
    );
    // a tiny leaf callee so call-terminators have a target
    let mut callee = FunctionBuilder::new("leaf", 0, Lang::C);
    let ce = callee.entry_block();
    callee.set_return(ce, None);

    for (i, (t, f, store, call)) in shape.arms.iter().enumerate() {
        let id = BlockId(i as u32);
        if *store {
            b.push_store(id, c, buf, 0);
        }
        if *call && i + 1 < n {
            // end the block with a call instead of a branch sometimes
            b.set_call(id, FuncId(1), vec![], None, BlockId((i + 1) as u32));
        } else {
            b.set_cond_branch(
                id,
                BranchOp::Bne,
                c,
                None,
                BlockId((t % n) as u32),
                BlockId((f % n) as u32),
            );
        }
    }
    b.set_return(BlockId((n - 1) as u32), None);
    Program {
        name: "prop".into(),
        funcs: vec![b.finish(), callee.finish()],
        main: FuncId(0),
        isa: Isa::Alpha,
    }
}

#[test]
fn every_heuristic_is_total_on_random_cfgs() {
    for_random_shapes(0x707A, |s| {
        let prog = build(s);
        let analysis = ProgramAnalysis::analyze(&prog);
        let aphc = Aphc::table1_order();
        let dshc = Dshc::new(HeuristicRates::ball_larus_mips());
        for site in prog.branch_sites() {
            let ctx = BranchCtx::new(&prog, &analysis, site);
            let _ = Btfnt.predict(&ctx);
            for h in Heuristic::TABLE1_ORDER {
                let _ = h.predict(&ctx); // must not panic
            }
            // APHC == first applicable heuristic
            let manual = Heuristic::TABLE1_ORDER.iter().find_map(|h| h.predict(&ctx));
            assert_eq!(aphc.predict(&ctx), manual);
            // DSHC coverage == any heuristic applies
            let covered = Heuristic::TABLE1_ORDER.iter().any(|h| h.predict(&ctx).is_some());
            assert_eq!(dshc.predict(&ctx).is_some(), covered);
            if let Some(p) = dshc.prob_taken(&ctx) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    });
}

#[test]
fn unanimous_heuristics_force_the_dshc_direction() {
    for_random_shapes(0x0514, |s| {
        let prog = build(s);
        let analysis = ProgramAnalysis::analyze(&prog);
        let dshc = Dshc::new(HeuristicRates::ball_larus_mips());
        for site in prog.branch_sites() {
            let ctx = BranchCtx::new(&prog, &analysis, site);
            let preds: Vec<bool> = Heuristic::TABLE1_ORDER
                .iter()
                .filter_map(|h| h.predict(&ctx))
                .collect();
            if !preds.is_empty() && preds.iter().all(|p| *p == preds[0]) {
                // all applicable heuristics agree and all hit rates are > 0.5,
                // so Dempster-Shafer must follow them
                assert_eq!(dshc.predict(&ctx), Some(preds[0]));
            }
        }
    });
}

#[test]
fn measured_rates_are_probabilities() {
    for_random_shapes(0x4a7e, |s| {
        let prog = build(s);
        let analysis = ProgramAnalysis::analyze(&prog);
        // fabricate a profile by running the program only if it terminates
        // quickly; random CFGs may loop forever, so bound the budget.
        let limits = esp_exec::ExecLimits { max_insns: 20_000, ..Default::default() };
        if let Ok(out) = esp_exec::run(&prog, &limits) {
            let rates = measure_rates([(&prog, &analysis, &out.profile)]);
            for h in Heuristic::TABLE1_ORDER {
                let r = rates.hit_rate(h);
                assert!((0.0..=1.0).contains(&r), "{}: {r}", h.name());
                assert!((rates.miss_rate(h) - (1.0 - r)).abs() < 1e-12);
            }
        }
    });
}
