//! The Cee front end: a small C-like language.
//!
//! ```text
//! int sum(int *a, int n) {
//!     int s = 0;
//!     int i;
//!     for (i = 0; i < n; i = i + 1) {
//!         s = s + a[i];
//!     }
//!     return s;
//! }
//! ```
//!
//! Supported constructs: `int` / `float` scalars, `int*` / `float*` pointers,
//! local array declarations (`int a[10];`, sugar for an allocation),
//! `if`/`else`, `while`, `do … while`, canonical counted `for`, `switch`
//! (without fall-through), `break`/`continue`/`return`, short-circuit
//! `&&`/`||`, `fabs(e)`, `alloc_int(n)` / `alloc_float(n)`, `null`, casts
//! `(int) e`, `(float) e`, `(int*) e`, `(float*) e`, line comments `//`.

use esp_ir::Lang;

use crate::ast::{BinOp, Expr, FuncDecl, LValue, Module, Stmt, Type, UnOp};
use crate::error::ParseError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

const PUNCTS: &[&str] = &[
    "&&", "||", "==", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%", "=", ";", ",", "(",
    ")", "{", "}", "[", "]", ":", "!",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            // line comments
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'/'
                && self.src[self.pos + 1] == b'/'
            {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, u32), ParseError> {
        self.skip_ws();
        let line = self.line;
        if self.pos >= self.src.len() {
            return Ok((Tok::Eof, line));
        }
        let c = self.src[self.pos];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii ident")
                .to_string();
            return Ok((Tok::Ident(s), line));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let is_float = self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'.'
                && self.src[self.pos + 1].is_ascii_digit();
            if is_float {
                self.pos += 1;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
                let v: f64 = s
                    .parse()
                    .map_err(|_| ParseError::new(line, format!("bad float literal `{s}`")))?;
                return Ok((Tok::Float(v), line));
            }
            let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
            let v: i64 = s
                .parse()
                .map_err(|_| ParseError::new(line, format!("bad integer literal `{s}`")))?;
            return Ok((Tok::Int(v), line));
        }
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.pos += p.len();
                return Ok((Tok::Punct(p), line));
            }
        }
        Err(ParseError::new(
            line,
            format!("unexpected character `{}`", c as char),
        ))
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ParseError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let t = lx.next()?;
        let eof = t.0 == Tok::Eof;
        out.push(t);
        if eof {
            return Ok(out);
        }
    }
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line(), msg)
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    /// A type name starts with `int` or `float`; an optional `*` makes it a
    /// pointer.
    fn try_type(&mut self) -> Option<Type> {
        let base = match self.peek() {
            Tok::Ident(s) if s == "int" => Type::Int,
            Tok::Ident(s) if s == "float" => Type::Float,
            _ => return None,
        };
        self.bump();
        if self.eat_punct("*") {
            Some(match base {
                Type::Int => Type::PtrInt,
                Type::Float => Type::PtrFloat,
                _ => unreachable!(),
            })
        } else {
            Some(base)
        }
    }

    fn parse_module(&mut self, name: &str) -> Result<Module, ParseError> {
        let mut funcs = Vec::new();
        while *self.peek() != Tok::Eof {
            funcs.push(self.parse_func()?);
        }
        Ok(Module {
            name: name.to_string(),
            funcs,
        })
    }

    fn parse_func(&mut self) -> Result<FuncDecl, ParseError> {
        let ret = match self.peek() {
            Tok::Ident(s) if s == "void" => {
                self.bump();
                None
            }
            _ => Some(
                self.try_type()
                    .ok_or_else(|| self.err("expected return type"))?,
            ),
        };
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let ty = self
                    .try_type()
                    .ok_or_else(|| self.err("expected parameter type"))?;
                let pname = self.expect_ident()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.parse_block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            lang: Lang::C,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of file in block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Declarations start with a type keyword.
        if matches!(self.peek(), Tok::Ident(s) if s == "int" || s == "float") {
            // Could still be a cast-expression statement, but casts appear in
            // parens, so a leading type keyword means a declaration.
            let ty = self.try_type().expect("checked type keyword");
            let name = self.expect_ident()?;
            // Array declaration sugar: `int a[10];`
            if self.eat_punct("[") {
                let len = self.parse_expr()?;
                self.expect_punct("]")?;
                self.expect_punct(";")?;
                let (pty, ety) = match ty {
                    Type::Int => (Type::PtrInt, Type::Int),
                    Type::Float => (Type::PtrFloat, Type::Float),
                    _ => return Err(self.err("array of pointers is not supported")),
                };
                return Ok(Stmt::Let {
                    name,
                    ty: pty,
                    init: Some(Expr::Alloc(ety, Box::new(len))),
                });
            }
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Let { name, ty, init });
        }

        match self.peek().clone() {
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                let then_blk = self.parse_block()?;
                let else_blk = if matches!(self.peek(), Tok::Ident(s) if s == "else") {
                    self.bump();
                    if matches!(self.peek(), Tok::Ident(s) if s == "if") {
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                let body = self.parse_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Ident(kw) if kw == "do" => {
                self.bump();
                let body = self.parse_block()?;
                self.expect_kw("while")?;
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::Ident(kw) if kw == "for" => self.parse_for(),
            Tok::Ident(kw) if kw == "switch" => self.parse_switch(),
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                if self.eat_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Ident(kw) if kw == "break" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            Tok::Ident(kw) if kw == "continue" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                // Assignment or expression statement.
                let e = self.parse_expr()?;
                if self.eat_punct("=") {
                    let lv = match e {
                        Expr::Var(name) => LValue::Var(name),
                        Expr::Index(base, idx) => LValue::Index(base, idx),
                        _ => return Err(self.err("invalid assignment target")),
                    };
                    let rhs = self.parse_expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Assign(lv, rhs))
                } else {
                    self.expect_punct(";")?;
                    Ok(Stmt::ExprStmt(e))
                }
            }
        }
    }

    /// Canonical counted form:
    /// `for (i = e1; i <relop> e2; i = i <+|-> k) block`.
    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("for")?;
        self.expect_punct("(")?;
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let from = self.parse_expr()?;
        self.expect_punct(";")?;
        let v2 = self.expect_ident()?;
        if v2 != var {
            return Err(self.err("for-loop condition must test the induction variable"));
        }
        let relop = match self.bump() {
            Tok::Punct("<") => BinOp::Lt,
            Tok::Punct("<=") => BinOp::Le,
            Tok::Punct(">") => BinOp::Gt,
            Tok::Punct(">=") => BinOp::Ge,
            other => return Err(self.err(format!("expected relational operator, found {other:?}"))),
        };
        let bound = self.parse_expr()?;
        self.expect_punct(";")?;
        let v3 = self.expect_ident()?;
        if v3 != var {
            return Err(self.err("for-loop step must update the induction variable"));
        }
        self.expect_punct("=")?;
        let v4 = self.expect_ident()?;
        if v4 != var {
            return Err(self.err("for-loop step must be `i = i + k` or `i = i - k`"));
        }
        let negative = match self.bump() {
            Tok::Punct("+") => false,
            Tok::Punct("-") => true,
            other => return Err(self.err(format!("expected `+` or `-` in step, found {other:?}"))),
        };
        let k = match self.bump() {
            Tok::Int(k) if k > 0 => k,
            other => return Err(self.err(format!("expected positive step constant, found {other:?}"))),
        };
        self.expect_punct(")")?;
        let body = self.parse_block()?;

        let step = if negative { -k } else { k };
        // Convert the exclusive bounds of `<` / `>` into the AST's inclusive
        // `to` field.
        let to = match relop {
            BinOp::Le | BinOp::Ge => bound,
            BinOp::Lt => Expr::Bin(BinOp::Sub, Box::new(bound), Box::new(Expr::Int(1))),
            BinOp::Gt => Expr::Bin(BinOp::Add, Box::new(bound), Box::new(Expr::Int(1))),
            _ => unreachable!(),
        };
        if (step > 0) != matches!(relop, BinOp::Lt | BinOp::Le) {
            return Err(self.err("for-loop step direction contradicts its condition"));
        }
        Ok(Stmt::For {
            var,
            from,
            to,
            step,
            body,
        })
    }

    fn parse_switch(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("switch")?;
        self.expect_punct("(")?;
        let selector = self.parse_expr()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut cases = Vec::new();
        let mut default = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Ident(s) if s == "case" => {
                    self.bump();
                    let label = match self.bump() {
                        Tok::Int(v) => v,
                        other => {
                            return Err(self.err(format!("expected case label, found {other:?}")))
                        }
                    };
                    self.expect_punct(":")?;
                    let mut body = Vec::new();
                    while !matches!(self.peek(), Tok::Ident(s) if s == "case" || s == "default")
                        && *self.peek() != Tok::Punct("}")
                    {
                        body.push(self.parse_stmt()?);
                    }
                    cases.push((label, body));
                }
                Tok::Ident(s) if s == "default" => {
                    self.bump();
                    self.expect_punct(":")?;
                    while !matches!(self.peek(), Tok::Ident(s) if s == "case")
                        && *self.peek() != Tok::Punct("}")
                    {
                        default.push(self.parse_stmt()?);
                    }
                }
                Tok::Punct("}") => {
                    self.bump();
                    break;
                }
                other => return Err(self.err(format!("expected case or `}}`, found {other:?}"))),
            }
        }
        Ok(Stmt::Switch {
            selector,
            cases,
            default,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_and()?;
        while self.eat_punct("||") {
            let r = self.parse_and()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_cmp()?;
        while self.eat_punct("&&") {
            let r = self.parse_cmp()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.parse_add()?;
        let op = match self.peek() {
            Tok::Punct("==") => BinOp::Eq,
            Tok::Punct("!=") => BinOp::Ne,
            Tok::Punct("<") => BinOp::Lt,
            Tok::Punct("<=") => BinOp::Le,
            Tok::Punct(">") => BinOp::Gt,
            Tok::Punct(">=") => BinOp::Ge,
            _ => return Ok(e),
        };
        self.bump();
        let r = self.parse_add()?;
        Ok(Expr::Bin(op, Box::new(e), Box::new(r)))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.parse_mul()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Rem,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.parse_unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        // Cast: `(` type `)` unary — requires two-token lookahead.
        if *self.peek() == Tok::Punct("(") {
            if let Tok::Ident(s) = self.peek2() {
                if s == "int" || s == "float" {
                    self.bump(); // (
                    let ty = self.try_type().expect("checked type keyword");
                    self.expect_punct(")")?;
                    let e = self.parse_unary()?;
                    return Ok(Expr::Cast(ty, Box::new(e)));
                }
            }
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        while self.eat_punct("[") {
            let idx = self.parse_expr()?;
            self.expect_punct("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(s) if s == "null" => Ok(Expr::Null),
            Tok::Ident(s) if s == "fabs" => {
                self.expect_punct("(")?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Un(UnOp::Abs, Box::new(e)))
            }
            Tok::Ident(s) if s == "alloc_int" || s == "alloc_float" => {
                let ty = if s == "alloc_int" {
                    Type::Int
                } else {
                    Type::Float
                };
                self.expect_punct("(")?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Alloc(ty, Box::new(e)))
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse Cee source text into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the failing line on malformed input.
pub fn parse(name: &str, src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_module(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sum_function() {
        let m = parse(
            "t",
            r#"
            int sum(int *a, int n) {
                int s = 0;
                int i;
                for (i = 0; i < n; i = i + 1) {
                    s = s + a[i];
                }
                return s;
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.funcs.len(), 1);
        let f = &m.funcs[0];
        assert_eq!(f.name, "sum");
        assert_eq!(f.params, vec![("a".into(), Type::PtrInt), ("n".into(), Type::Int)]);
        assert_eq!(f.ret, Some(Type::Int));
        // for-loop with exclusive bound becomes inclusive `to = n - 1`
        match &f.body[2] {
            Stmt::For { var, step, to, .. } => {
                assert_eq!(var, "i");
                assert_eq!(*step, 1);
                assert!(matches!(to, Expr::Bin(BinOp::Sub, _, _)));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_idioms() {
        let m = parse(
            "t",
            r#"
            int find(int *p, int key) {
                while (p != null && p[0] != key) {
                    p = (int*) p[1];
                }
                if (p == null) { return 0 - 1; }
                return p[0];
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        match &f.body[0] {
            Stmt::While { cond, .. } => {
                assert!(matches!(cond, Expr::Bin(BinOp::And, _, _)));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn parses_switch_and_float() {
        let m = parse(
            "t",
            r#"
            float dispatch(int op, float x) {
                float r = 0.0;
                switch (op) {
                    case 0: r = x + 1.5;
                    case 1: r = fabs(x);
                    default: r = 0.25;
                }
                return r;
            }
            "#,
        )
        .unwrap();
        match &m.funcs[0].body[1] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[0].0, 0);
                assert_eq!(default.len(), 1);
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn parses_array_decl_as_alloc() {
        let m = parse("t", "void f() { int a[10]; a[0] = 1; }").unwrap();
        match &m.funcs[0].body[0] {
            Stmt::Let { ty, init, .. } => {
                assert_eq!(*ty, Type::PtrInt);
                assert!(matches!(init, Some(Expr::Alloc(Type::Int, _))));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parses_do_while_and_else_if() {
        let m = parse(
            "t",
            r#"
            int f(int n) {
                int i = 0;
                do { i = i + 1; } while (i < n);
                if (i > 10) { return 1; } else if (i > 5) { return 2; } else { return 3; }
            }
            "#,
        )
        .unwrap();
        assert!(matches!(m.funcs[0].body[1], Stmt::DoWhile { .. }));
        match &m.funcs[0].body[2] {
            Stmt::If { else_blk, .. } => assert!(matches!(else_blk[0], Stmt::If { .. })),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("t", "int f( {").is_err());
        assert!(parse("t", "int f() { return @; }").is_err());
        assert!(parse("t", "int f() { for (i = 0; j < 10; i = i + 1) {} }").is_err());
        assert!(parse("t", "int f() { for (i = 0; i < 10; i = i - 1) {} }").is_err());
    }

    #[test]
    fn line_numbers_in_errors() {
        let err = parse("t", "int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let m = parse("t", "// header\nint f() { // body\n return 1; }").unwrap();
        assert_eq!(m.funcs.len(), 1);
    }
}
