//! Table 3: measured attributes of the traced programs.

use crate::data::SuiteData;
use crate::fmt::{pct1, TextTable};

/// One program's Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Program name.
    pub name: String,
    /// Dynamic IR instructions traced.
    pub insns_traced: u64,
    /// Percentage of instructions that are conditional branches.
    pub pct_cond_branches: f64,
    /// Percentage of executed conditional branches that were taken.
    pub pct_taken: f64,
    /// Number of hottest branch sites covering 50/75/90/95/99/100% of
    /// executions.
    pub quantiles: [usize; 6],
    /// Total static conditional branch sites.
    pub static_sites: usize,
}

/// Compute every row of Table 3.
pub fn compute(suite: &SuiteData) -> Vec<Table3Row> {
    suite
        .benches
        .iter()
        .map(|b| {
            let p = &b.profile;
            let q = [0.50, 0.75, 0.90, 0.95, 0.99, 1.0].map(|f| p.quantile_sites(f));
            Table3Row {
                name: b.bench.name.to_string(),
                insns_traced: p.dyn_insns,
                pct_cond_branches: if p.dyn_insns == 0 {
                    0.0
                } else {
                    p.dyn_cond_branches as f64 / p.dyn_insns as f64
                },
                pct_taken: p.overall_taken_fraction().unwrap_or(0.0),
                quantiles: q,
                static_sites: b.prog.branch_sites().len(),
            }
        })
        .collect()
}

/// Render Table 3 in the paper's layout.
pub fn table3(suite: &SuiteData) -> String {
    let rows = compute(suite);
    let mut t = TextTable::new(vec![
        "Program", "# Insns Traced", "% Cond", "%Taken", "Q-50", "Q-75", "Q-90", "Q-95", "Q-99",
        "Q-100", "Static",
    ]);
    let mut prev_group = None;
    for (row, bench) in rows.iter().zip(&suite.benches) {
        if prev_group.is_some() && prev_group != Some(bench.bench.group) {
            t.separator();
        }
        prev_group = Some(bench.bench.group);
        t.row(vec![
            row.name.clone(),
            row.insns_traced.to_string(),
            pct1(row.pct_cond_branches),
            pct1(row.pct_taken),
            row.quantiles[0].to_string(),
            row.quantiles[1].to_string(),
            row.quantiles[2].to_string(),
            row.quantiles[3].to_string(),
            row.quantiles[4].to_string(),
            row.quantiles[5].to_string(),
            row.static_sites.to_string(),
        ]);
    }
    format!(
        "Table 3: measured attributes of the traced programs ({})\n\n{}",
        suite.config.name,
        t.render()
    )
}
