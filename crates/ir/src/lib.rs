//! RISC-like intermediate representation and control-flow analyses for the
//! ESP reproduction.
//!
//! This crate is the stand-in for the binary-level program representation the
//! paper obtained from ATOM on DEC Alpha binaries. It provides:
//!
//! * a small register-machine IR ([`Insn`], [`Terminator`], [`BasicBlock`],
//!   [`Function`], [`Program`]) with two ISA flavours ([`Isa::Alpha`] — branches
//!   compare a register against zero and conditional moves exist — and
//!   [`Isa::Mips`] — branches compare two registers, no conditional move);
//! * control-flow graphs with labelled edges ([`cfg::Cfg`]);
//! * dominator and post-dominator trees ([`dom::DomTree`]);
//! * natural-loop analysis using the Ball–Larus definition
//!   ([`loops::LoopInfo`]);
//! * per-block def/use scanning used by the Guard heuristic and the `UseDef`
//!   feature ([`defuse`]).
//!
//! # Example
//!
//! ```
//! use esp_ir::{FunctionBuilder, BranchOp, Lang, Reg};
//!
//! // while (i < 10) i = i + 1;
//! let mut b = FunctionBuilder::new("count", 0, Lang::C);
//! let i = b.fresh_reg();
//! let c = b.fresh_reg();
//! let entry = b.entry_block();
//! let head = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! b.push_load_imm(entry, i, 0);
//! b.set_fallthrough(entry, head);
//! b.push_cmp_imm(head, esp_ir::CmpOp::Lt, c, i, 10);
//! b.set_cond_branch(head, BranchOp::Bne, c, None, body, exit);
//! b.push_alu_imm(body, esp_ir::AluOp::Add, i, i, 1);
//! b.set_jump(body, head);
//! b.set_return(exit, Some(i));
//! let f = b.finish();
//! assert_eq!(f.blocks.len(), 4);
//! let _ = Reg(0); // registers are plain indices
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod cfg;
pub mod defuse;
pub mod dom;
pub mod insn;
pub mod loops;
pub mod pointer;
pub mod print;
pub mod program;
pub mod term;
pub mod validate;

pub use analysis::{FuncAnalysis, ProgramAnalysis};
pub use builder::FunctionBuilder;
pub use defuse::{effective_compare, CompareRhs, EffectiveCompare};
pub use pointer::PointerSet;
pub use cfg::{Cfg, Edge, EdgeKind};
pub use dom::DomTree;
pub use insn::{AluOp, CmpOp, FpuOp, Insn, Opcode};
pub use loops::LoopInfo;
pub use program::{
    BasicBlock, BlockId, BranchId, FuncId, Function, Isa, Lang, ProcKind, Program, Reg,
};
pub use term::{BranchOp, TermKind, Terminator};
pub use validate::{validate_function, validate_program, ValidateError};
