//! Telemetry is observation-only: enabling `esp-obs` span tracing must not
//! change a single byte of the evaluation output. This runs a miniature
//! Table 4 (two C programs, two leave-one-out folds, tiny learner) with
//! tracing off and again with tracing on, and compares the rendered tables
//! bit for bit.

use esp_core::{EspConfig, Learner};
use esp_eval::{table4, SuiteData, Table4Config};
use esp_lang::CompilerConfig;
use esp_nnet::MlpConfig;

fn mini_cfg() -> Table4Config {
    Table4Config {
        esp: EspConfig {
            learner: Learner::Net(MlpConfig {
                hidden: 3,
                max_epochs: 12,
                patience: 6,
                restarts: 1,
                ..MlpConfig::default()
            }),
            threads: 2,
            ..EspConfig::default()
        },
        model_cache: None,
        quant: None,
    }
}

#[test]
fn table4_is_byte_identical_with_tracing_on_and_off() {
    let suite = SuiteData::build_subset(&["sort", "grep"], &CompilerConfig::default());
    let cfg = mini_cfg();

    assert!(!esp_obs::trace::enabled(), "tracing must start disabled");
    let untraced = table4(&suite, &cfg);

    esp_obs::trace::enable();
    let traced = table4(&suite, &cfg);
    esp_obs::trace::disable();
    let events = esp_obs::trace::drain();

    assert_eq!(
        untraced.as_bytes(),
        traced.as_bytes(),
        "tracing changed the rendered table"
    );
    assert!(
        !events.is_empty(),
        "the traced run must actually have recorded spans"
    );
    // The traced run covered the interesting layers: evaluation folds,
    // network training epochs and the runtime pool all show up.
    for cat in ["eval", "train", "runtime"] {
        assert!(
            events.iter().any(|e| e.cat == cat),
            "no `{cat}` spans in the trace"
        );
    }
    // And the trace renders to loadable JSON with complete spans inside.
    let json = esp_obs::trace::render_json(&events);
    assert!(json.starts_with('['));
    assert!(json.contains("\"ph\": \"X\"") || json.contains("\"ph\":\"X\""));
    assert!(json.contains("table4_fold"));
}
