//! Shard workers: per-shard LRU caches and model compute behind channels.
//!
//! The event loop routes every predict row to a shard by a stable FNV-1a
//! hash of its cache-key bytes (the same `site_key` bytes PROFILE joins
//! on), following the accuracy ledger's 16-way sharding pattern. A given
//! feature vector therefore always lands on the same shard, which is what
//! lets each shard own its cache outright — no mutex, no cross-shard
//! coherence, and the aggregate hit rate matches a single shared cache.
//!
//! Each worker is one OS thread blocking on an `mpsc` channel. The reactor
//! splits a predict batch into per-shard buckets, tags each row with its
//! original batch index, and hands every bucket of one request the same
//! [`PredictJoin`]; workers fill their slice of the join and decrement its
//! counter, and the reactor completes the response when the counter hits
//! zero. Row results land by index, so response order is request order no
//! matter how shards interleave — and because the batched kernel is
//! bitwise deterministic per row, the shard count can never change a
//! served probability.
//!
//! Cache keys are prefixed with the owning [`ModelEntry`]'s table-unique
//! load id, so a hot reload can never serve a stale probability: the new
//! entry's keys simply never collide with the old one's, and the old
//! entries age out of the LRU. The accuracy ledger keeps joining on the
//! *unprefixed* site key (`key[SHARD_KEY_PREFIX..]`), unchanged from the
//! single-model wire contract.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use crate::cache::LruCache;
use crate::models::ModelEntry;
use crate::protocol::PredictRow;
use crate::server::Shared;

/// FNV-1a parameters, identical to the ledger's shard router.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Bytes of model-id prefix on every shard cache key.
pub(crate) const SHARD_KEY_PREFIX: usize = 8;

/// FNV-1a over the row's cache-key bytes (raw IEEE-754 bits then mask
/// bytes), streamed without materializing the key. Hashing exactly the
/// `cache_key` byte sequence is the routing invariant: equal cache keys
/// hash equally, so a feature vector always reaches the shard that may
/// hold its cached probability.
pub(crate) fn route_hash(row: &[f64], mask: &[bool]) -> u64 {
    let mut h = FNV_OFFSET;
    for &x in row {
        for b in x.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    for &m in mask {
        h = (h ^ m as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Write a shard cache key into a caller-owned buffer: the model entry's
/// load id (little-endian) followed by the row's plain cache-key bytes.
/// The suffix `&buf[SHARD_KEY_PREFIX..]` is exactly `cache_key(row, mask)`
/// — the ledger site key.
pub(crate) fn shard_key_into(buf: &mut Vec<u8>, model_id: u64, row: &[f64], mask: &[bool]) {
    buf.clear();
    buf.reserve(SHARD_KEY_PREFIX + row.len() * 8 + mask.len());
    buf.extend_from_slice(&model_id.to_le_bytes());
    for &x in row {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    for &m in mask {
        buf.push(m as u8);
    }
}

/// Per-shard health counters, read by `/healthz` and the metrics
/// exposition (all relaxed: monitoring, not synchronization).
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Jobs dispatched but not yet finished by this shard.
    pub queue_depth: AtomicU64,
    /// Rows this shard answered from its cache.
    pub hits: AtomicU64,
    /// Rows this shard computed.
    pub misses: AtomicU64,
    /// Entries currently in this shard's cache.
    pub entries: AtomicU64,
}

/// Join state for one in-flight predict request, shared by every shard
/// bucket of the request. Workers fill `probs` by original batch index
/// *before* decrementing `remaining` (release); the reactor treats
/// `remaining == 0` (acquire) as "all rows resolved".
pub(crate) struct PredictJoin {
    /// One probability per request row, in request order.
    pub probs: Mutex<Vec<f64>>,
    /// Shard buckets still working.
    pub remaining: AtomicUsize,
    /// Cache hits across all buckets (for the request's metrics/span).
    pub hits: AtomicU64,
}

impl PredictJoin {
    fn new(rows: usize, buckets: usize) -> Self {
        PredictJoin {
            probs: Mutex::new(vec![0.0; rows]),
            remaining: AtomicUsize::new(buckets),
            hits: AtomicU64::new(0),
        }
    }

    /// True once every shard bucket has filled its rows.
    pub fn complete(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// Work sent to one shard worker.
enum ShardJob {
    /// One request's bucket of rows for this shard, tagged with their
    /// original batch indices.
    Predict {
        entry: Arc<ModelEntry>,
        rows: Vec<(usize, PredictRow)>,
        join: Arc<PredictJoin>,
    },
    /// Drain and exit (sent once per worker at shutdown).
    Stop,
}

/// The shard workers. Owned by the reactor thread: senders never cross
/// threads, and the reactor stops and joins the workers when it drains.
pub(crate) struct ShardPool {
    senders: Vec<mpsc::Sender<ShardJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ShardPool {
    /// Spawn `shards` workers. Each owns an LRU cache of
    /// `cache_capacity / shards` entries (rounded up; `0` disables
    /// caching), so the configured capacity bounds the aggregate.
    pub fn spawn(shared: &Arc<Shared>, shards: usize, cache_capacity: usize) -> ShardPool {
        let shards = shards.max(1);
        let per_shard = if cache_capacity == 0 {
            0
        } else {
            cache_capacity.div_ceil(shards)
        };
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = mpsc::channel();
            let worker_shared = Arc::clone(shared);
            let stats = Arc::clone(&shared.shard_stats[i]);
            let handle = std::thread::Builder::new()
                .name(format!("esp-serve-shard-{i}"))
                .spawn(move || worker_loop(worker_shared, rx, stats, LruCache::new(per_shard), i))
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        ShardPool { senders, handles }
    }

    /// Route a validated predict batch to its shards and return the join
    /// the reactor polls. Rows are bucketed by [`route_hash`] of their
    /// cache-key bytes; an empty batch completes immediately.
    pub fn dispatch(&self, shared: &Shared, entry: &Arc<ModelEntry>, rows: Vec<PredictRow>) -> Arc<PredictJoin> {
        let nshards = self.senders.len() as u64;
        let mut buckets: Vec<Vec<(usize, PredictRow)>> =
            (0..self.senders.len()).map(|_| Vec::new()).collect();
        let n = rows.len();
        for (i, r) in rows.into_iter().enumerate() {
            let s = (route_hash(&r.row, &r.mask) % nshards) as usize;
            buckets[s].push((i, r));
        }
        let jobs = buckets.iter().filter(|b| !b.is_empty()).count();
        let join = Arc::new(PredictJoin::new(n, jobs));
        for (s, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            shared.shard_stats[s].queue_depth.fetch_add(1, Ordering::Relaxed);
            let _ = self.senders[s].send(ShardJob::Predict {
                entry: Arc::clone(entry),
                rows: bucket,
                join: Arc::clone(&join),
            });
        }
        join
    }

    /// Tell every worker to drain and exit, then join them. Jobs already
    /// queued are processed first (`Stop` sits behind them in the channel),
    /// so pending requests complete before the pool dies.
    pub fn stop(mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardJob::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    rx: mpsc::Receiver<ShardJob>,
    stats: Arc<ShardStats>,
    mut cache: LruCache,
    shard_index: usize,
) {
    // One reusable key buffer per worker: hot-path lookups allocate
    // nothing (see `LruCache::get`).
    let mut key_buf: Vec<u8> = Vec::new();
    while let Ok(job) = rx.recv() {
        match job {
            ShardJob::Stop => break,
            ShardJob::Predict { entry, rows, join } => {
                process(&shared, &stats, &mut cache, &mut key_buf, shard_index, &entry, &rows, &join);
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Resolve one shard bucket: cache lookups, batched compute for the
/// misses, ledger attribution for every row, then fill the join.
#[allow(clippy::too_many_arguments)]
fn process(
    shared: &Shared,
    stats: &ShardStats,
    cache: &mut LruCache,
    key_buf: &mut Vec<u8>,
    shard_index: usize,
    entry: &ModelEntry,
    rows: &[(usize, PredictRow)],
    join: &PredictJoin,
) {
    let start = Instant::now();
    let mut sp = esp_obs::span!("serve", "predict_shard", rows = rows.len());
    let ledger_on = shared.ledger.enabled();
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(rows.len());
    // (bucket index, owned shard key) for each cache miss.
    let mut miss: Vec<(usize, Vec<u8>)> = Vec::new();
    for (bi, (orig, r)) in rows.iter().enumerate() {
        shard_key_into(key_buf, entry.id, &r.row, &r.mask);
        match cache.get(key_buf) {
            Some(p) => {
                if ledger_on {
                    shared.ledger.record_served(&key_buf[SHARD_KEY_PREFIX..], p);
                }
                out.push((*orig, p));
            }
            None => miss.push((bi, key_buf.clone())),
        }
    }
    let hits = (rows.len() - miss.len()) as u64;

    // Compute the misses with the batched kernel (shared normalization
    // buffers, no per-row allocation), `predict_chunk` rows at a time.
    // Chunking is a memory knob only: per-row results are bitwise
    // independent, so neither the chunk size nor the shard count can
    // change a probability.
    let mut computed: Vec<f64> = Vec::with_capacity(miss.len());
    for chunk in miss.chunks(shared.predict_chunk) {
        computed.extend(entry.model.predict_prob_encoded_batch(
            chunk.iter().map(|(bi, _)| (&rows[*bi].1.row[..], &rows[*bi].1.mask[..])),
        ));
    }
    for ((bi, key), &p) in miss.iter().zip(&computed) {
        cache.insert(key, p);
        if ledger_on {
            shared.ledger.record_served(&key[SHARD_KEY_PREFIX..], p);
        }
        out.push((rows[*bi].0, p));
    }

    stats.hits.fetch_add(hits, Ordering::Relaxed);
    stats.misses.fetch_add(miss.len() as u64, Ordering::Relaxed);
    stats.entries.store(cache.len() as u64, Ordering::Relaxed);
    let m = &shared.metrics;
    m.cache_hits.add(hits);
    m.cache_misses.add(miss.len() as u64);
    m.record_predict_compute_us(start.elapsed().as_micros() as u64);
    if sp.is_enabled() {
        sp.arg("shard", shard_index);
        sp.arg("hits", hits);
        sp.arg("misses", miss.len());
    }

    // Publish results, then release the bucket: the reactor's acquire
    // load of `remaining` makes the filled rows visible.
    {
        let mut probs = join.probs.lock().expect("join lock");
        for (idx, p) in out {
            probs[idx] = p;
        }
    }
    join.hits.fetch_add(hits, Ordering::Relaxed);
    join.remaining.fetch_sub(1, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache_key;

    #[test]
    fn route_hash_matches_the_cache_key_bytes() {
        // The routing invariant: hashing the row directly must equal
        // FNV-1a over the materialized cache key.
        let row = [1.5, -0.25, f64::NAN];
        let mask = [true, false, true];
        let key = cache_key(&row, &mask);
        let mut h = FNV_OFFSET;
        for &b in &key {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(route_hash(&row, &mask), h);
    }

    #[test]
    fn shard_key_suffix_is_the_ledger_site_key() {
        let row = [0.5, 2.0];
        let mask = [true, true];
        let mut buf = Vec::new();
        shard_key_into(&mut buf, 0x0102_0304_0506_0708, &row, &mask);
        assert_eq!(&buf[..SHARD_KEY_PREFIX], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&buf[SHARD_KEY_PREFIX..], &cache_key(&row, &mask)[..]);
        // Distinct model ids never alias, same id round-trips.
        let mut other = Vec::new();
        shard_key_into(&mut other, 0x0102_0304_0506_0709, &row, &mask);
        assert_ne!(buf, other);
    }
}
