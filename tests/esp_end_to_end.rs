//! The headline claim, end to end on a corpus slice: ESP trained on other
//! programs predicts an unseen program better than chance, and the learned
//! model transfers across programs the way the paper's §3 describes.

use esp_repro::esp::{
    leave_one_out, EspConfig, EspModel, FeatureSet, Learner, TrainingProgram,
};
use esp_repro::eval::{miss_rate, Prediction, SuiteData};
use esp_repro::lang::CompilerConfig;
use esp_repro::nnet::{MlpConfig, TreeConfig};

fn quick_net() -> EspConfig {
    EspConfig {
        learner: Learner::Net(MlpConfig {
            hidden: 6,
            max_epochs: 80,
            patience: 15,
            restarts: 1,
            ..MlpConfig::default()
        }),
        features: FeatureSet::default(),
        ..EspConfig::default()
    }
}

#[test]
fn esp_beats_coin_flips_on_held_out_programs() {
    let suite = SuiteData::build_subset(
        &["sort", "grep", "sed", "gzip", "wdiff", "compress", "yacr", "eqntott"],
        &CompilerConfig::default(),
    );
    let programs: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();
    let mut rates = Vec::new();
    for i in 0..programs.len() {
        let model = leave_one_out(&programs, i, &quick_net());
        let b = &suite.benches[i];
        rates.push(miss_rate(b, |s| {
            Prediction::from(Some(model.predict_taken(&b.prog, &b.analysis, s)))
        }));
    }
    let avg = rates.iter().sum::<f64>() / rates.len() as f64;
    assert!(
        avg < 0.40,
        "held-out ESP average miss rate {avg:.3}; per-program {rates:?}"
    );
}

#[test]
fn net_and_tree_learners_are_comparable() {
    let suite = SuiteData::build_subset(
        &["sort", "grep", "sed", "gzip", "wdiff", "compress"],
        &CompilerConfig::default(),
    );
    let programs: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();
    let tree_cfg = EspConfig {
        learner: Learner::Tree(TreeConfig::default()),
        features: FeatureSet::default(),
        ..EspConfig::default()
    };
    let mut net_rates = Vec::new();
    let mut tree_rates = Vec::new();
    for i in 0..programs.len() {
        let b = &suite.benches[i];
        let net = leave_one_out(&programs, i, &quick_net());
        net_rates.push(miss_rate(b, |s| {
            Prediction::from(Some(net.predict_taken(&b.prog, &b.analysis, s)))
        }));
        let tree = leave_one_out(&programs, i, &tree_cfg);
        tree_rates.push(miss_rate(b, |s| {
            Prediction::from(Some(tree.predict_taken(&b.prog, &b.analysis, s)))
        }));
    }
    let net_avg = net_rates.iter().sum::<f64>() / net_rates.len() as f64;
    let tree_avg = tree_rates.iter().sum::<f64>() / tree_rates.len() as f64;
    // "comparable" (§3.1.2): within 15 percentage points on this small slice
    assert!(
        (net_avg - tree_avg).abs() < 0.15,
        "net {net_avg:.3} vs tree {tree_avg:.3} diverge too much"
    );
    assert!(tree_avg < 0.5, "tree no better than random: {tree_avg:.3}");
}

#[test]
fn training_is_deterministic() {
    let suite = SuiteData::build_subset(&["sort", "grep", "sed"], &CompilerConfig::default());
    let programs: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();
    let m1 = EspModel::train(&programs, &quick_net());
    let m2 = EspModel::train(&programs, &quick_net());
    let b = &suite.benches[0];
    for site in b.prog.branch_sites() {
        assert_eq!(
            m1.predict_prob(&b.prog, &b.analysis, site),
            m2.predict_prob(&b.prog, &b.analysis, site)
        );
    }
}
