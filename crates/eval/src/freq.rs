//! Program-based profile estimation — the paper's stated next goal ("Our
//! next goal will be to incorporate this branch probability data to perform
//! program-based profile estimation using ESP", §6) in the style of
//! Wu & Larus (MICRO'94).
//!
//! Given a per-branch taken-probability (from ESP's network output, from
//! DSHC's combined evidence, or a flat 0.5 baseline), intra-procedural block
//! frequencies are estimated by solving the flow equations
//!
//! ```text
//! freq(entry) = 1
//! freq(b)     = Σ_{p → b} freq(p) · prob(p → b)
//! ```
//!
//! iteratively in reverse postorder (cycles converge geometrically once
//! branch probabilities are clamped away from 1).

use esp_ir::{BranchId, FuncId, Program, Terminator};

use crate::data::BenchData;

/// Clamp applied to branch probabilities so loops have finite expected trip
/// counts (Wu & Larus use the same device).
const PROB_CLAMP: f64 = 0.99;

/// Estimate relative block frequencies of one function (entry = 1.0).
///
/// `branch_prob` supplies the taken-probability of each conditional branch
/// site; switch edges are split uniformly.
pub fn estimate_block_freq(
    prog: &Program,
    func: FuncId,
    branch_prob: &mut dyn FnMut(BranchId) -> f64,
) -> Vec<f64> {
    let f = prog.func(func);
    let n = f.num_blocks();
    // Pre-compute edge probabilities per block.
    let mut edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n]; // succ index, prob
    for (id, block) in f.iter_blocks() {
        let out = &mut edges[id.index()];
        match &block.term {
            Terminator::FallThrough { target } | Terminator::Jump { target } => {
                out.push((target.index(), 1.0));
            }
            Terminator::Call { next, .. } => out.push((next.index(), 1.0)),
            Terminator::CondBranch {
                taken, not_taken, ..
            } => {
                let p = branch_prob(BranchId { func, block: id })
                    .clamp(1.0 - PROB_CLAMP, PROB_CLAMP);
                out.push((taken.index(), p));
                out.push((not_taken.index(), 1.0 - p));
            }
            Terminator::Switch {
                targets, default, ..
            } => {
                let k = targets.len() + 1;
                let p = 1.0 / k as f64;
                for t in targets {
                    out.push((t.index(), p));
                }
                out.push((default.index(), p));
            }
            Terminator::Return { .. } => {}
        }
    }

    // Gauss–Seidel in RPO; geometric convergence for clamped loops.
    let analysis = esp_ir::FuncAnalysis::analyze(f);
    let rpo = analysis.cfg.reverse_postorder();
    let mut freq = vec![0.0f64; n];
    for _ in 0..200 {
        let mut delta = 0.0f64;
        for &b in &rpo {
            let incoming: f64 = if b.index() == 0 {
                1.0
            } else {
                analysis
                    .cfg
                    .preds(b)
                    .iter()
                    .map(|e| {
                        let p = edges[e.from.index()]
                            .iter()
                            .filter(|(to, _)| *to == b.index())
                            .map(|(_, p)| *p)
                            .sum::<f64>();
                        freq[e.from.index()] * p
                    })
                    .sum()
            };
            delta = delta.max((incoming - freq[b.index()]).abs());
            freq[b.index()] = incoming;
        }
        if delta < 1e-9 {
            break;
        }
    }
    freq
}

/// How well estimated frequencies track the measured profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqReport {
    /// Pearson correlation of `ln(1 + freq)` between estimate and
    /// measurement, over blocks of executed functions.
    pub log_correlation: f64,
    /// Mean absolute error of the *relative* block frequencies.
    pub mean_abs_error: f64,
    /// Number of blocks compared.
    pub blocks: usize,
}

/// Evaluate a probability source against the program's real profile.
///
/// For every function that executed, estimated relative frequencies are
/// compared with measured block counts normalised by the function's entry
/// count.
pub fn evaluate_estimation(
    data: &BenchData,
    branch_prob: &mut dyn FnMut(BranchId) -> f64,
) -> FreqReport {
    let mut est_all = Vec::new();
    let mut real_all = Vec::new();
    for (fid, f) in data.prog.iter_funcs() {
        let entry_count = data.profile.block_count(fid, f.entry());
        if entry_count == 0 {
            continue;
        }
        let est = estimate_block_freq(&data.prog, fid, branch_prob);
        for (id, _) in f.iter_blocks() {
            let real = data.profile.block_count(fid, id) as f64 / entry_count as f64;
            est_all.push(est[id.index()]);
            real_all.push(real);
        }
    }
    let n = est_all.len();
    if n == 0 {
        return FreqReport {
            log_correlation: 0.0,
            mean_abs_error: 0.0,
            blocks: 0,
        };
    }
    let loge: Vec<f64> = est_all.iter().map(|x| (1.0 + x).ln()).collect();
    let logr: Vec<f64> = real_all.iter().map(|x| (1.0 + x).ln()).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (me, mr) = (mean(&loge), mean(&logr));
    let mut cov = 0.0;
    let mut ve = 0.0;
    let mut vr = 0.0;
    for i in 0..n {
        cov += (loge[i] - me) * (logr[i] - mr);
        ve += (loge[i] - me).powi(2);
        vr += (logr[i] - mr).powi(2);
    }
    let denom = (ve * vr).sqrt();
    let corr = if denom > 0.0 { cov / denom } else { 0.0 };
    let mae = est_all
        .iter()
        .zip(&real_all)
        .map(|(e, r)| (e - r).abs())
        .sum::<f64>()
        / n as f64;
    FreqReport {
        log_correlation: corr,
        mean_abs_error: mae,
        blocks: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_corpus::suite;
    use esp_lang::CompilerConfig;

    #[test]
    fn perfect_probabilities_estimate_frequencies_well() {
        let bench = suite().into_iter().find(|b| b.name == "sort").expect("sort");
        let data = crate::data::BenchData::build(&bench, &CompilerConfig::default());
        // oracle probabilities straight from the profile
        let profile = data.profile.clone();
        let mut oracle = |site: BranchId| {
            profile
                .counts(site)
                .and_then(|c| c.taken_prob())
                .unwrap_or(0.5)
        };
        let report = evaluate_estimation(&data, &mut oracle);
        assert!(report.blocks > 20);
        assert!(
            report.log_correlation > 0.9,
            "oracle-probability estimation should track reality: {report:?}"
        );

        // flat 0.5 probabilities must be strictly worse
        let mut flat = |_: BranchId| 0.5;
        let flat_report = evaluate_estimation(&data, &mut flat);
        assert!(
            flat_report.log_correlation < report.log_correlation,
            "flat {flat_report:?} vs oracle {report:?}"
        );
    }

    #[test]
    fn straight_line_function_has_unit_frequencies() {
        use esp_ir::{FuncId, FunctionBuilder, Isa, Lang, Program};
        let mut b = FunctionBuilder::new("main", 0, Lang::C);
        let e = b.entry_block();
        let n1 = b.new_block();
        b.set_fallthrough(e, n1);
        b.set_return(n1, None);
        let prog = Program {
            name: "t".into(),
            funcs: vec![b.finish()],
            main: FuncId(0),
            isa: Isa::Alpha,
        };
        let freq = estimate_block_freq(&prog, FuncId(0), &mut |_| 0.5);
        assert!((freq[0] - 1.0).abs() < 1e-9);
        assert!((freq[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loop_frequency_matches_expected_trip_count() {
        use esp_ir::{BranchOp, FuncId, FunctionBuilder, Isa, Lang, Program, Reg};
        // entry -> head; head: branch (taken=body p) | exit; body -> head
        let mut b = FunctionBuilder::new("main", 0, Lang::C);
        let c: Reg = b.fresh_reg();
        let e = b.entry_block();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.push_load_imm(e, c, 1);
        b.set_fallthrough(e, head);
        b.set_cond_branch(head, BranchOp::Bne, c, None, body, exit);
        b.set_jump(body, head);
        b.set_return(exit, None);
        let prog = Program {
            name: "t".into(),
            funcs: vec![b.finish()],
            main: FuncId(0),
            isa: Isa::Alpha,
        };
        // p(taken=stay in loop) = 0.9 => head executes ~1/(1-0.9) = 10 times
        let freq = estimate_block_freq(&prog, FuncId(0), &mut |_| 0.9);
        assert!(
            (freq[1] - 10.0).abs() < 0.2,
            "head frequency {} should be ~10",
            freq[1]
        );
        assert!((freq[3] - 1.0).abs() < 1e-6, "exit runs once");
    }
}
