//! The generic worklist dataflow solver.
//!
//! An [`Analysis`] describes a monotone lattice problem: a boundary state, a
//! join, a per-block transfer function, and (optionally) per-edge transfer
//! with executability — returning `None` marks the edge dead, which is how
//! SCCP's executable-edge tracking and the interval analysis's infeasible
//! refinements prune paths.
//!
//! [`solve`] iterates whole-CFG sweeps in reverse postorder (postorder for
//! backward problems) until a fixpoint. Round-robin sweeps over a fixed
//! deterministic order make the solver's behaviour — and, together with the
//! monotone lattice, its result — independent of hash/iteration accidents:
//! the same function always produces the same [`Solution`].

use esp_ir::cfg::{Cfg, Edge};
use esp_ir::BlockId;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block along edges.
    Forward,
    /// Facts flow from exit blocks against edges.
    Backward,
}

/// A monotone dataflow problem over one function's CFG.
pub trait Analysis {
    /// The lattice element attached to each program point. `None` at the
    /// solver level means "no executable path reaches this point yet".
    type State: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// The state at the boundary: the function entry (forward) or every
    /// exit-less block (backward).
    fn boundary(&self) -> Self::State;

    /// Join `from` into `into` (least upper bound).
    fn join(&self, into: &mut Self::State, from: &Self::State);

    /// Transfer one block: mutate the flow-in state into the flow-out state.
    /// For backward problems "in" is the state *after* the block.
    fn transfer(&self, block: BlockId, state: &mut Self::State);

    /// The state an edge propagates given its source's flow-out state.
    /// Return `None` to mark the edge not executable. The default forwards
    /// the state unchanged.
    fn edge_state(&self, _edge: &Edge, out: &Self::State) -> Option<Self::State> {
        Some(out.clone())
    }

    /// Widening hook, called when a block's freshly joined input differs
    /// from its previous input. Must return an upper bound of both; the
    /// default — plain replacement — is correct for finite-height lattices.
    fn widen(&self, _block: BlockId, _old: &Self::State, new: Self::State) -> Self::State {
        new
    }
}

/// Fixpoint states per block. Indexing follows block ids; `None` marks
/// blocks no executable path reaches (forward) or that reach no exit
/// (backward).
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Flow-in state per block: at block entry for forward problems, at
    /// block *exit* (live-out) for backward ones.
    pub input: Vec<Option<S>>,
    /// Flow-out state per block: at block exit for forward problems, at
    /// block *entry* (live-in) for backward ones.
    pub output: Vec<Option<S>>,
}

/// Run `analysis` over `cfg` to fixpoint.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::State> {
    let n = cfg.num_blocks();
    let mut order = cfg.reverse_postorder();
    if analysis.direction() == Direction::Backward {
        order.reverse();
    }
    let mut input: Vec<Option<A::State>> = vec![None; n];
    let mut output: Vec<Option<A::State>> = vec![None; n];

    let is_boundary = |b: BlockId| match analysis.direction() {
        Direction::Forward => b == BlockId(0),
        Direction::Backward => cfg.succs(b).is_empty(),
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            // Join the contributions of every executable in-flow edge.
            let mut inc: Option<A::State> = is_boundary(b).then(|| analysis.boundary());
            let flow_edges: &[Edge] = match analysis.direction() {
                Direction::Forward => cfg.preds(b),
                Direction::Backward => cfg.succs(b),
            };
            for e in flow_edges {
                let src = match analysis.direction() {
                    Direction::Forward => e.from,
                    Direction::Backward => e.to,
                };
                let Some(out) = &output[src.index()] else {
                    continue;
                };
                let Some(s) = analysis.edge_state(e, out) else {
                    continue;
                };
                match &mut inc {
                    None => inc = Some(s),
                    Some(acc) => analysis.join(acc, &s),
                }
            }
            let Some(mut inc) = inc else {
                continue; // nothing reaches this block (yet)
            };
            if let Some(old) = &input[b.index()] {
                if inc != *old {
                    inc = analysis.widen(b, old, inc);
                }
            }
            if input[b.index()].as_ref() == Some(&inc) {
                continue; // input stable => output stable
            }
            input[b.index()] = Some(inc.clone());
            analysis.transfer(b, &mut inc);
            if output[b.index()].as_ref() != Some(&inc) {
                output[b.index()] = Some(inc);
                changed = true;
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_ir::builder::FunctionBuilder;
    use esp_ir::term::BranchOp;
    use esp_ir::{Function, Lang, Reg};

    /// Forward "reaching blocks" analysis: state counts joins, checking the
    /// solver visits everything reachable exactly once per sweep.
    struct Reach;
    impl Analysis for Reach {
        type State = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> u32 {
            0
        }
        fn join(&self, into: &mut u32, from: &u32) {
            *into = (*into).max(*from);
        }
        fn transfer(&self, _b: BlockId, s: &mut u32) {
            *s += 1;
        }
    }

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let t = b.new_block();
        let n = b.new_block();
        let x = b.new_block();
        b.push_load_imm(e, c, 1);
        b.set_cond_branch(e, BranchOp::Bne, c, None, t, n);
        b.set_jump(t, x);
        b.set_fallthrough(n, x);
        b.set_return(x, None);
        b.finish()
    }

    #[test]
    fn forward_reaches_all_reachable_blocks() {
        let f = diamond();
        let cfg = esp_ir::cfg::Cfg::new(&f);
        let sol = solve(&cfg, &Reach);
        for b in 0..f.num_blocks() {
            assert!(sol.output[b].is_some(), "block {b} unreached");
        }
        // exit block saw depth max(entry+arm)+1 = 3
        assert_eq!(sol.output[3], Some(3));
        let _ = Reg(0);
    }

    /// Backward counterpart: distance to exit.
    struct ToExit;
    impl Analysis for ToExit {
        type State = u32;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self) -> u32 {
            0
        }
        fn join(&self, into: &mut u32, from: &u32) {
            *into = (*into).max(*from);
        }
        fn transfer(&self, _b: BlockId, s: &mut u32) {
            *s += 1;
        }
    }

    #[test]
    fn backward_seeds_exit_blocks() {
        let f = diamond();
        let cfg = esp_ir::cfg::Cfg::new(&f);
        let sol = solve(&cfg, &ToExit);
        assert_eq!(sol.input[3], Some(0), "exit block live-out is the boundary");
        assert_eq!(sol.output[0], Some(3), "entry is three transfers from exit");
    }
}
