//! Satellite tests for `.espm` artifacts around a *real* trained model:
//! byte-identical re-serialization, bitwise-identical predictions after a
//! disk round trip, and typed (never panicking) failures on damaged files.

use esp_artifact::{ArtifactError, ModelArtifact, ModelMeta, Registry};
use esp_core::{EspConfig, EspModel, Learner, TrainingProgram};
use esp_eval::SuiteData;
use esp_heur::HeuristicRates;
use esp_lang::CompilerConfig;
use esp_nnet::MlpConfig;

/// A quick-but-real training run over two corpus programs.
fn trained_model() -> (SuiteData, EspModel) {
    let suite = SuiteData::build_subset(&["sort", "grep"], &CompilerConfig::default());
    let group: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();
    let cfg = EspConfig {
        learner: Learner::Net(MlpConfig {
            hidden: 4,
            max_epochs: 25,
            patience: 6,
            restarts: 1,
            ..MlpConfig::default()
        }),
        threads: 1,
        ..EspConfig::default()
    };
    let model = EspModel::train(&group, &cfg);
    (suite, model)
}

fn artifact_of(model: &EspModel) -> ModelArtifact {
    ModelArtifact::from_model(
        model,
        ModelMeta {
            corpus_id: "roundtrip-subset".into(),
            seed: MlpConfig::default().seed,
            fold: None,
            examples: model.num_examples() as u64,
            train_config: "roundtrip-subset quick net".into(),
        },
        Some(HeuristicRates::ball_larus_mips()),
    )
    .expect("network-backed model")
}

#[test]
fn trained_model_round_trips_bitwise() {
    let (suite, model) = trained_model();
    let artifact = artifact_of(&model);

    // serialize → deserialize → serialize is byte-identical
    let bytes = artifact.to_bytes();
    let decoded = ModelArtifact::from_bytes(&bytes).expect("own bytes decode");
    assert_eq!(decoded, artifact);
    assert_eq!(decoded.to_bytes(), bytes);

    // …and survives the filesystem, via the registry.
    let root = std::env::temp_dir().join(format!("espm-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let reg = Registry::open(&root);
    let version = reg.publish("roundtrip", &artifact).expect("publish");
    let (_, reloaded) = reg.load("roundtrip", Some(version)).expect("load");
    assert_eq!(reloaded, artifact);

    // The reloaded model predicts bitwise identically on every branch site
    // of every program in the corpus subset.
    let loaded_model = reloaded.to_model();
    let mut sites = 0usize;
    for b in &suite.benches {
        for site in b.prog.branch_sites() {
            let expect = model.predict_prob(&b.prog, &b.analysis, site);
            let got = loaded_model.predict_prob(&b.prog, &b.analysis, site);
            assert_eq!(
                expect.to_bits(),
                got.to_bits(),
                "site {site:?} of `{}`: {expect} != {got}",
                b.bench.name
            );
            sites += 1;
        }
    }
    assert!(sites > 50, "subset should exercise many branch sites, got {sites}");

    // The batched kernel entry point round-trips too: scoring all of a
    // program's sites in one fused pass over the reloaded flat weights is
    // bit-for-bit the original model's per-site path.
    for b in &suite.benches {
        let sites = b.prog.branch_sites();
        let batched = loaded_model.predict_prob_sites(&b.prog, &b.analysis, &sites);
        assert_eq!(batched.len(), sites.len());
        for (site, got) in sites.iter().zip(&batched) {
            let expect = model.predict_prob(&b.prog, &b.analysis, *site);
            assert_eq!(
                expect.to_bits(),
                got.to_bits(),
                "batched prediction diverged at site {site:?} of `{}`",
                b.bench.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn damaged_files_fail_with_typed_errors() {
    let artifact = ModelArtifact::synthetic(11, 4, 7);
    let dir = std::env::temp_dir().join(format!("espm-damage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.espm");
    artifact.save(&path).expect("save");
    let good = std::fs::read(&path).unwrap();

    // corrupted payload byte → checksum failure
    let mut corrupt = good.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(ArtifactError::CorruptChecksum { .. })
    ));

    // truncated file → typed truncation error
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(ArtifactError::Truncated { .. })
    ));

    // future format version → refused, not mis-parsed
    let mut future = good.clone();
    future[4] = 99;
    std::fs::write(&path, &future).unwrap();
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(ArtifactError::UnsupportedVersion(99))
    ));

    // not an .espm file at all
    std::fs::write(&path, b"definitely not a model").unwrap();
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(ArtifactError::BadMagic)
    ));

    // missing file → Io, not a panic
    assert!(matches!(
        ModelArtifact::load(&dir.join("ghost.espm")),
        Err(ArtifactError::Io(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
