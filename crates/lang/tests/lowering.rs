//! Semantic tests for code generation: control-flow constructs, switch
//! strategies, short-circuit evaluation and if-conversion safety, all
//! verified by executing the compiled programs.

use esp_exec::{run, ExecLimits, Value};
use esp_ir::{Insn, Lang, Program, Terminator};
use esp_lang::{compile_source, CompilerConfig};

fn exec(src: &str, cfg: &CompilerConfig) -> i64 {
    let prog = compile_source("t", src, Lang::C, cfg).expect("compiles");
    ret_int(&prog)
}

fn exec_fort(src: &str, cfg: &CompilerConfig) -> Program {
    compile_source("t", src, Lang::Fort, cfg).expect("compiles")
}

fn ret_int(prog: &Program) -> i64 {
    match run(prog, &ExecLimits::default()).expect("terminates").ret {
        Some(Value::Int(v)) => v,
        other => panic!("unexpected return {other:?}"),
    }
}

fn all_configs() -> [CompilerConfig; 6] {
    [
        CompilerConfig::o0(),
        CompilerConfig::cc_osf1_v12(),
        CompilerConfig::cc_osf1_v20(),
        CompilerConfig::gem(),
        CompilerConfig::gnu(),
        CompilerConfig::mips_ref(),
    ]
}

#[test]
fn short_circuit_and_protects_null_deref() {
    let src = r#"
        int main() {
            int *p = null;
            int hits = 0;
            if (p != null && p[0] == 1) { hits = 1; }
            if (p == null || p[0] == 2) { hits = hits + 10; }
            return hits;
        }
    "#;
    for cfg in all_configs() {
        assert_eq!(exec(src, &cfg), 10, "config {}", cfg.name);
    }
}

#[test]
fn logical_operators_in_value_position() {
    let src = r#"
        int main() {
            int a = 3;
            int b = 0;
            int x = (a > 1) && (b == 0);
            int y = (a < 0) || (b != 0);
            return x * 10 + y;
        }
    "#;
    for cfg in all_configs() {
        assert_eq!(exec(src, &cfg), 10, "config {}", cfg.name);
    }
}

#[test]
fn dense_switch_uses_jump_table_sparse_uses_chain() {
    let dense = r#"
        int main() {
            int x = 3;
            int r = 0;
            switch (x) {
                case 0: r = 1;
                case 1: r = 2;
                case 2: r = 3;
                case 3: r = 4;
                case 4: r = 5;
                default: r = 9;
            }
            return r;
        }
    "#;
    let sparse = r#"
        int main() {
            int x = 5000;
            int r = 0;
            switch (x) {
                case 1: r = 1;
                case 100: r = 2;
                case 5000: r = 3;
                default: r = 9;
            }
            return r;
        }
    "#;
    let cfg = CompilerConfig::default();
    let has_switch = |p: &Program| {
        p.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .any(|b| matches!(b.term, Terminator::Switch { .. }))
    };
    let dp = compile_source("d", dense, Lang::C, &cfg).expect("compiles");
    assert!(has_switch(&dp), "dense labels must lower to a jump table");
    assert_eq!(ret_int(&dp), 4);
    let sp = compile_source("s", sparse, Lang::C, &cfg).expect("compiles");
    assert!(!has_switch(&sp), "sparse labels must lower to a compare chain");
    assert_eq!(ret_int(&sp), 3);
}

#[test]
fn break_and_continue_semantics() {
    let src = r#"
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 6) { break; }
                s = s + i;
            }
            return s; // 1 + 3 + 5 = 9
        }
    "#;
    for cfg in all_configs() {
        assert_eq!(exec(src, &cfg), 9, "config {}", cfg.name);
    }
}

#[test]
fn do_while_runs_at_least_once() {
    let src = r#"
        int main() {
            int n = 0;
            do { n = n + 1; } while (n < 0);
            return n;
        }
    "#;
    for cfg in all_configs() {
        assert_eq!(exec(src, &cfg), 1, "config {}", cfg.name);
    }
}

#[test]
fn cmov_is_not_applied_to_unsafe_speculation() {
    // the then-branch loads through a pointer that is null when the
    // condition is false — if-conversion must refuse.
    let src = r#"
        int main() {
            int *p = null;
            int ok = 0;
            if (ok != 0) { ok = p[0]; }
            return ok;
        }
    "#;
    let cfg = CompilerConfig::gem(); // most aggressive if-converter
    let prog = compile_source("t", src, Lang::C, &cfg).expect("compiles");
    let has_cmov = prog
        .funcs
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.insns)
        .any(|i| matches!(i, Insn::CMov { .. }));
    assert!(!has_cmov, "loads must never be speculated");
    assert_eq!(ret_int(&prog), 0);
}

#[test]
fn cmov_applied_to_safe_two_armed_if() {
    let src = r#"
        int main() {
            int x = 7;
            int m = 0;
            if (x > 5) { m = x * 2; } else { m = x - 1; }
            return m;
        }
    "#;
    let prog = compile_source("t", src, Lang::C, &CompilerConfig::gem()).expect("compiles");
    let has_cmov = prog
        .funcs
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.insns)
        .any(|i| matches!(i, Insn::CMov { .. }));
    assert!(has_cmov, "safe diamond must be if-converted under gem");
    assert_eq!(ret_int(&prog), 14);
}

#[test]
fn fort_exit_cycle_and_nested_do() {
    let src = r#"
        INTEGER FUNCTION COUNTUP(N)
          INTEGER N, I, J, S
          S = 0
          DO I = 1, N
            IF (MOD(I, 2) .EQ. 0) CYCLE
            DO J = 1, 3
              IF (J .EQ. 3) EXIT
              S = S + 1
            ENDDO
          ENDDO
          COUNTUP = S
          RETURN
        END
        PROGRAM P
          INTEGER R
          R = COUNTUP(10)
        END
    "#;
    // odd i in 1..10 => 5 iterations, each adding 2 (j = 1, 2)
    for cfg in all_configs() {
        let prog = exec_fort(src, &cfg);
        let out = run(&prog, &ExecLimits::default()).expect("terminates");
        // PROGRAM returns nothing; instead verify the profile has executions
        assert!(out.profile.dyn_cond_branches > 0, "config {}", cfg.name);
    }
    // and with an explicit check through a function return via Cee-style
    // wrapper: recompile as INTEGER FUNCTION main is not allowed, so assert
    // the branch counts differ between configs only in population, not
    // behaviour — the differential proptest covers value equality for Cee.
}

#[test]
fn float_comparisons_against_zero_use_fb_opcodes_on_alpha() {
    let src = r#"
        int main() {
            float x = 0.0 - 2.5;
            int neg = 0;
            if (x < 0.0) { neg = 1; }
            return neg;
        }
    "#;
    let prog = compile_source("t", src, Lang::C, &CompilerConfig::gnu()).expect("compiles");
    let has_fb = prog.funcs.iter().flat_map(|f| &f.blocks).any(|b| {
        matches!(
            b.term,
            Terminator::CondBranch {
                op: esp_ir::BranchOp::Fblt | esp_ir::BranchOp::Fbge,
                ..
            }
        )
    });
    assert!(has_fb, "float-vs-zero must use a direct FB* branch on Alpha");
    assert_eq!(ret_int(&prog), 1);
}

#[test]
fn nested_function_calls_and_recursion() {
    let src = r#"
        int fib(int n) {
            if (n <= 1) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int twice(int x) { return fib(x) * 2; }
        int main() { return twice(12); }
    "#;
    for cfg in all_configs() {
        assert_eq!(exec(src, &cfg), 288, "config {}", cfg.name);
    }
}
