//! The corpus linter: stable diagnostics over whole programs.
//!
//! [`lint_program`] runs [`FuncFacts`](crate::facts::FuncFacts) over every
//! function of a program and emits findings with stable codes:
//!
//! | code | meaning |
//! |------|---------|
//! | `L001` | unreachable basic block (no CFG path, or constant propagation proves no executable path) |
//! | `L002` | conditional branch statically decided — one arm never executes |
//! | `L003` | dead store: a register definition no execution path reads |
//! | `L004` | loop-invariant branch condition — resolves identically on every iteration |
//!
//! Findings are sorted by `(function, block, instruction, code)`, so two
//! runs over the same program produce byte-identical reports; the
//! machine-readable JSON ([`report_json`]) is newline-per-finding and
//! diffable, which is how `verify.sh` pins the corpus-wide golden file.
//!
//! `L002` findings carry the proved direction and are the subject of the
//! execution oracle: any branch reported one-sided must show a profile
//! `taken_prob` of exactly 0.0 or 1.0.

use esp_ir::{BlockId, FuncId, Program, ProgramAnalysis};

use crate::facts::FuncFacts;

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// Unreachable basic block.
    UnreachableBlock,
    /// Statically decided conditional branch.
    DecidedBranch,
    /// Dead register definition.
    DeadStore,
    /// Loop-invariant branch condition.
    InvariantCondition,
}

impl LintCode {
    /// The stable code string (`L001`..`L004`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnreachableBlock => "L001",
            LintCode::DecidedBranch => "L002",
            LintCode::DeadStore => "L003",
            LintCode::InvariantCondition => "L004",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Diagnostic code.
    pub code: LintCode,
    /// Containing function.
    pub func: FuncId,
    /// Function name (for human-readable output).
    pub func_name: String,
    /// Block the finding anchors to.
    pub block: BlockId,
    /// Instruction index, for instruction-level findings (`L003`).
    pub insn: Option<usize>,
    /// For `L002`: the proved direction (`true` = always taken).
    pub verdict: Option<bool>,
    /// Human-readable explanation.
    pub message: String,
}

/// Lint every function of `prog`. `analysis` must be the analysis of the
/// same program. The result is deterministically ordered.
pub fn lint_program(prog: &Program, analysis: &ProgramAnalysis) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, func) in prog.funcs.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let fa = analysis.func(fid);
        let facts = FuncFacts::compute(func, fa);
        let mut push = |code, block, insn, verdict, message: String| {
            out.push(Finding {
                code,
                func: fid,
                func_name: func.name.clone(),
                block,
                insn,
                verdict,
                message,
            });
        };

        for bi in 0..func.num_blocks() {
            let block = BlockId(bi as u32);
            if !fa.cfg.is_reachable(block) {
                push(
                    LintCode::UnreachableBlock,
                    block,
                    None,
                    None,
                    "unreachable block: no CFG path from entry".to_string(),
                );
            } else if !facts.reachable[bi] {
                push(
                    LintCode::UnreachableBlock,
                    block,
                    None,
                    None,
                    "unreachable block: constant propagation proves no executable path"
                        .to_string(),
                );
            }
        }

        for &(block, bf) in &facts.branches {
            if !facts.reachable[block.index()] {
                continue;
            }
            if let Some(taken) = bf.decided {
                let how = if bf.decided_by_interval {
                    "interval analysis"
                } else {
                    "constant propagation"
                };
                let arm = if taken { "taken" } else { "not-taken" };
                push(
                    LintCode::DecidedBranch,
                    block,
                    None,
                    Some(taken),
                    format!("branch statically decided: always {arm} ({how})"),
                );
            } else if bf.invariant {
                push(
                    LintCode::InvariantCondition,
                    block,
                    None,
                    None,
                    "loop-invariant branch condition: resolves identically on every iteration"
                        .to_string(),
                );
            }
        }

        for d in &facts.dead {
            if !facts.reachable[d.block.index()] {
                continue;
            }
            push(
                LintCode::DeadStore,
                d.block,
                Some(d.insn),
                None,
                format!("dead store: r{} defined but never read", d.reg.0),
            );
        }
    }
    out.sort_by(|a, b| {
        (a.func.0, a.block.0, a.insn.unwrap_or(usize::MAX), a.code)
            .cmp(&(b.func.0, b.block.0, b.insn.unwrap_or(usize::MAX), b.code))
    });
    out
}

/// A named program together with its findings.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Program (benchmark) name.
    pub name: String,
    /// Its findings, as produced by [`lint_program`].
    pub findings: Vec<Finding>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let mut s = format!(
        "{{\"code\": \"{}\", \"func\": \"{}\", \"site\": \"f{}:b{}\"",
        f.code.code(),
        escape(&f.func_name),
        f.func.0,
        f.block.0
    );
    if let Some(i) = f.insn {
        s.push_str(&format!(", \"insn\": {i}"));
    }
    if let Some(v) = f.verdict {
        s.push_str(&format!(
            ", \"verdict\": \"{}\"",
            if v { "taken" } else { "not-taken" }
        ));
    }
    s.push_str(&format!(", \"message\": \"{}\"}}", escape(&f.message)));
    s
}

/// Serialise one program's findings as a JSON object, one finding per line.
pub fn findings_json(program_name: &str, findings: &[Finding]) -> String {
    let mut s = format!("    {{\n      \"name\": \"{}\",\n", escape(program_name));
    s.push_str(&format!("      \"count\": {},\n", findings.len()));
    s.push_str("      \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n        ");
        s.push_str(&finding_json(f));
    }
    if findings.is_empty() {
        s.push(']');
    } else {
        s.push_str("\n      ]");
    }
    s.push_str("\n    }");
    s
}

/// Serialise a whole corpus report: stable, diffable, newline-per-finding.
pub fn report_json(reports: &[ProgramReport]) -> String {
    let total: usize = reports.iter().map(|r| r.findings.len()).sum();
    let mut s = String::from("{\n  \"programs\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(&findings_json(&r.name, &r.findings));
    }
    s.push_str("\n  ],\n");
    s.push_str(&format!("  \"total\": {total}\n}}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_ir::builder::FunctionBuilder;
    use esp_ir::insn::CmpOp;
    use esp_ir::term::BranchOp;
    use esp_ir::{Isa, Lang};

    fn one_func_program(f: esp_ir::Function) -> Program {
        Program {
            name: "test".to_string(),
            funcs: vec![f],
            main: FuncId(0),
            isa: Isa::Mips,
        }
    }

    #[test]
    fn decided_branch_and_dead_arm_reported() {
        let mut b = FunctionBuilder::new("main", 0, Lang::C);
        let c = b.fresh_reg();
        let t = b.fresh_reg();
        let e = b.entry_block();
        let dead = b.new_block();
        let live = b.new_block();
        b.push_load_imm(e, c, 3);
        b.push_cmp_imm(e, CmpOp::Eq, t, c, 3);
        b.set_cond_branch(e, BranchOp::Beq, t, None, dead, live);
        b.set_return(dead, None);
        b.set_return(live, None);
        let prog = one_func_program(b.finish());
        let analysis = ProgramAnalysis::analyze(&prog);
        let findings = lint_program(&prog, &analysis);
        let codes: Vec<&str> = findings.iter().map(|f| f.code.code()).collect();
        // beq on t=1 is NOT taken -> falls to `live`; `dead` is unreachable.
        assert!(codes.contains(&"L002"), "decided branch: {findings:?}");
        assert!(codes.contains(&"L001"), "dead arm: {findings:?}");
        let l002 = findings.iter().find(|f| f.code.code() == "L002").unwrap();
        assert_eq!(l002.verdict, Some(false));
    }

    #[test]
    fn dead_store_reported_with_insn_index() {
        let mut b = FunctionBuilder::new("main", 0, Lang::C);
        let r = b.fresh_reg();
        let e = b.entry_block();
        b.push_load_imm(e, r, 1);
        b.push_load_imm(e, r, 2);
        b.set_return(e, Some(r));
        let prog = one_func_program(b.finish());
        let analysis = ProgramAnalysis::analyze(&prog);
        let findings = lint_program(&prog, &analysis);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, LintCode::DeadStore);
        assert_eq!(findings[0].insn, Some(0));
    }

    #[test]
    fn report_json_is_stable_and_parsable_shape() {
        let reports = vec![
            ProgramReport {
                name: "a".to_string(),
                findings: vec![],
            },
            ProgramReport {
                name: "b".to_string(),
                findings: vec![Finding {
                    code: LintCode::DecidedBranch,
                    func: FuncId(0),
                    func_name: "main".to_string(),
                    block: BlockId(2),
                    insn: None,
                    verdict: Some(true),
                    message: "m".to_string(),
                }],
            },
        ];
        let a = report_json(&reports);
        let b = report_json(&reports);
        assert_eq!(a, b);
        assert!(a.contains("\"total\": 1"));
        assert!(a.contains("\"site\": \"f0:b2\""));
        assert!(a.contains("\"verdict\": \"taken\""));
    }
}
