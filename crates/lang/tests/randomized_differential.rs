//! Differential compilation: random programs must compute the same result
//! under every compiler configuration (O0, rotated, unrolled, if-converted,
//! MIPS flavour). This exercises the whole optimizer + codegen pipeline
//! against the interpreter as the semantic oracle. Programs are drawn from
//! the in-tree seeded PCG32 stream so every run replays the same cases.

use esp_ir::Lang;
use esp_lang::ast::{BinOp, Expr, FuncDecl, LValue, Module, Stmt, Type};
use esp_lang::{compile_module, CompilerConfig};
use esp_runtime::Pcg32;

const CASES: u64 = 48;
const NUM_VARS: u8 = 4;
const NUM_LOOP_VARS: usize = 8;

#[derive(Debug, Clone)]
enum GExpr {
    Lit(i8),
    Var(u8),
    Bin(u8, Box<GExpr>, Box<GExpr>),
}

#[derive(Debug, Clone)]
enum GStmt {
    Assign(u8, GExpr),
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    Loop(u8, Vec<GStmt>),
}

fn random_gexpr(rng: &mut Pcg32, depth: usize) -> GExpr {
    if depth == 0 || rng.gen_bool(0.45) {
        if rng.gen_bool(0.5) {
            GExpr::Lit(rng.gen_range(-128i64..128) as i8)
        } else {
            GExpr::Var(rng.gen_range(0..(NUM_VARS as u32 + NUM_LOOP_VARS as u32)) as u8)
        }
    } else {
        let op = rng.gen_range(0..10u32) as u8;
        let a = random_gexpr(rng, depth - 1);
        let b = random_gexpr(rng, depth - 1);
        GExpr::Bin(op, Box::new(a), Box::new(b))
    }
}

fn random_gstmt(rng: &mut Pcg32, depth: usize) -> GStmt {
    if depth == 0 {
        return GStmt::Assign(rng.gen_range(0..NUM_VARS as u32) as u8, random_gexpr(rng, 2));
    }
    match rng.gen_range(0..3u32) {
        0 => GStmt::Assign(rng.gen_range(0..NUM_VARS as u32) as u8, random_gexpr(rng, 3)),
        1 => {
            let cond = random_gexpr(rng, 3);
            let nt = rng.gen_range(0..3usize);
            let nf = rng.gen_range(0..2usize);
            let t = (0..nt).map(|_| random_gstmt(rng, depth - 1)).collect();
            let f = (0..nf).map(|_| random_gstmt(rng, depth - 1)).collect();
            GStmt::If(cond, t, f)
        }
        _ => {
            let trip = rng.gen_range(0..7u32) as u8;
            let nb = rng.gen_range(0..3usize);
            let body = (0..nb).map(|_| random_gstmt(rng, depth - 1)).collect();
            GStmt::Loop(trip, body)
        }
    }
}

fn random_stmts(rng: &mut Pcg32) -> Vec<GStmt> {
    let n = rng.gen_range(1..6usize);
    (0..n).map(|_| random_gstmt(rng, 3)).collect()
}

fn build_expr(g: &GExpr) -> Expr {
    match g {
        GExpr::Lit(v) => Expr::Int(*v as i64),
        GExpr::Var(i) => Expr::Var(var_name(*i)),
        GExpr::Bin(op, a, b) => {
            let op = match op % 10 {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Rem,
                5 => BinOp::Lt,
                6 => BinOp::Eq,
                7 => BinOp::Gt,
                8 => BinOp::And,
                _ => BinOp::Or,
            };
            Expr::Bin(op, Box::new(build_expr(a)), Box::new(build_expr(b)))
        }
    }
}

fn var_name(i: u8) -> String {
    if i < NUM_VARS {
        format!("v{i}")
    } else {
        format!("l{}", i - NUM_VARS)
    }
}

/// Build statements; `depth` picks the loop variable so nested loops use
/// distinct induction variables.
fn build_stmts(gs: &[GStmt], depth: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    for g in gs {
        match g {
            GStmt::Assign(v, e) => out.push(Stmt::Assign(
                LValue::Var(var_name(*v)),
                build_expr(e),
            )),
            GStmt::If(c, t, f) => out.push(Stmt::If {
                cond: build_expr(c),
                then_blk: build_stmts(t, depth),
                else_blk: build_stmts(f, depth),
            }),
            GStmt::Loop(trip, body) => {
                if depth >= NUM_LOOP_VARS {
                    continue; // too deep: drop the loop
                }
                out.push(Stmt::For {
                    var: format!("l{depth}"),
                    from: Expr::Int(0),
                    to: Expr::Int(*trip as i64),
                    step: 1,
                    body: build_stmts(body, depth + 1),
                });
            }
        }
    }
    out
}

fn build_module(gs: &[GStmt]) -> Module {
    let mut body = Vec::new();
    for i in 0..NUM_VARS {
        body.push(Stmt::Let {
            name: var_name(i),
            ty: Type::Int,
            init: Some(Expr::Int(i as i64 * 7 + 1)),
        });
    }
    for d in 0..NUM_LOOP_VARS {
        body.push(Stmt::Let {
            name: format!("l{d}"),
            ty: Type::Int,
            init: None,
        });
    }
    body.extend(build_stmts(gs, 0));
    // return a checksum of all variables
    let mut sum = Expr::Var(var_name(0));
    for i in 1..NUM_VARS {
        sum = Expr::Bin(BinOp::Add, Box::new(sum), Box::new(Expr::Var(var_name(i))));
    }
    body.push(Stmt::Return(Some(sum)));
    Module {
        name: "diff".to_string(),
        funcs: vec![FuncDecl {
            name: "main".to_string(),
            params: vec![],
            ret: Some(Type::Int),
            body,
            lang: Lang::C,
        }],
    }
}

fn run(module: Module, cfg: &CompilerConfig) -> i64 {
    let prog = compile_module(module, cfg).expect("generated module compiles");
    let out = esp_exec::run(&prog, &esp_exec::ExecLimits::default()).expect("terminates");
    match out.ret {
        Some(esp_exec::Value::Int(v)) => v,
        other => panic!("unexpected return {other:?}"),
    }
}

#[test]
fn all_configs_compute_the_same_value() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xD1FF_u64.wrapping_add(case));
        let module = build_module(&random_stmts(&mut rng));
        let reference = run(module.clone(), &CompilerConfig::o0());
        for cfg in [
            CompilerConfig::cc_osf1_v12(),
            CompilerConfig::cc_osf1_v20(),
            CompilerConfig::gem(),
            CompilerConfig::gnu(),
            CompilerConfig::mips_ref(),
        ] {
            let got = run(module.clone(), &cfg);
            assert_eq!(got, reference, "case {case}: config {} diverged", cfg.name);
        }
    }
}

#[test]
fn compiled_programs_always_validate() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x7A11_u64.wrapping_add(case));
        let module = build_module(&random_stmts(&mut rng));
        for cfg in [CompilerConfig::o0(), CompilerConfig::gem(), CompilerConfig::mips_ref()] {
            let prog = compile_module(module.clone(), &cfg).expect("compiles");
            assert!(esp_ir::validate_program(&prog).is_ok());
        }
    }
}
