#!/usr/bin/env bash
# Tier-1 verification gate, hermetic by construction: every step runs with
# --offline so a regression that reintroduces a registry dependency fails
# here rather than on the first airgapped machine.
#
#   scripts/verify.sh          # build + test + bench smokes
#   scripts/verify.sh --fast   # build + test only
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

echo "==> serve integration test (train -> save -> serve -> bitwise compare)"
cargo test -q --release --offline -p esp-serve --test serve_integration
cargo test -q --release --offline -p esp-artifact --test roundtrip

if [[ "$fast" -eq 0 ]]; then
    echo "==> bench smoke (quick pipeline bench, writes BENCH_pipeline.json)"
    cargo run --release --offline -q -p esp-bench --bin bench_pipeline -- --quick
    echo "==> BENCH_pipeline.json:"
    cat BENCH_pipeline.json
    for key in phases setup_ms encode_ms profile_ms train_ms crossval_ms \
               total_ms tracing_overhead_pct tracing_identical \
               kernel coalesce_ratio train_examples_per_sec \
               train_allocs_per_epoch kernel_speedup kernel_identical \
               predict_rows_per_sec predict_rows_per_sec_f32 \
               batch_kernel_speedup batch_kernel_identical f32_kernel_identical \
               sim sim_programs sim_events_total sim_trace_record_ms \
               sim_replay_ms sim_branches_per_sec sim_deterministic \
               analyze analyze_branches_per_sec lint_findings_total \
               analyze_deterministic \
               ledger ledger_rows_per_sec_on ledger_rows_per_sec_off \
               ledger_overhead_pct ledger_sites; do
        grep -q "\"$key\"" BENCH_pipeline.json \
            || { echo "BENCH_pipeline.json is missing \"$key\"" >&2; exit 1; }
    done
    grep -q '"tracing_identical": true' BENCH_pipeline.json \
        || { echo "tracing changed the trained weights" >&2; exit 1; }
    grep -q '"kernel_identical": true' BENCH_pipeline.json \
        || { echo "fused kernel diverged from the two-pass reference" >&2; exit 1; }
    grep -q '"batch_kernel_identical": true' BENCH_pipeline.json \
        || { echo "panel kernel diverged bitwise from the scalar path" >&2; exit 1; }
    grep -q '"f32_kernel_identical": true' BENCH_pipeline.json \
        || { echo "f32 panel kernel diverged from the f32 scalar path" >&2; exit 1; }
    grep -q '"sim_deterministic": true' BENCH_pipeline.json \
        || { echo "arena replay A/B diverged: the sim is not deterministic" >&2; exit 1; }
    grep -q '"analyze_deterministic": true' BENCH_pipeline.json \
        || { echo "lint A/B diverged: the analyses are not deterministic" >&2; exit 1; }

    echo "==> corpus lint gate (full-corpus findings vs results/lint_golden.json)"
    cargo run --release --offline -q -p esp-bench --bin esp_lint -- \
        --json target/lint_report.json > /dev/null
    diff -u results/lint_golden.json target/lint_report.json \
        || { echo "lint findings drifted from the golden report — if the change \
is intentional, regenerate results/lint_golden.json with esp_lint --json" >&2; exit 1; }
    rm -f target/lint_report.json

    echo "==> static-vs-profile oracle (decided branches must match execution)"
    cargo run --release --offline -q -p esp-bench --bin esp_lint -- \
        --subset sort,grep,sed,gzip --oracle | tee lint_oracle.txt
    grep -q 'oracle: PASS' lint_oracle.txt \
        || { echo "a statically-decided branch contradicts its execution profile" >&2; exit 1; }
    rm -f lint_oracle.txt

    echo "==> serve smoke (in-process server + profile-replay load, writes BENCH_serve.json)"
    cargo run --release --offline -q -p esp-serve --bin esp-client -- \
        bench --quick --profile-rate 1.0 --metrics-out metrics_serve.prom
    echo "==> BENCH_serve.json:"
    cat BENCH_serve.json
    for key in throughput_rps predictions_per_sec p50_ms p99_ms hist_p90_us cache_hit_rate \
               predict_chunk predict_chunk_source \
               connections shards reloads_total open_loop \
               profile_rate observed_miss_rate calibration_ece profile_updates_per_sec; do
        grep -q "\"$key\"" BENCH_serve.json \
            || { echo "BENCH_serve.json is missing \"$key\"" >&2; exit 1; }
    done
    for key in rps_target achieved_rps; do
        grep -q "\"$key\"" BENCH_serve.json \
            || { echo "BENCH_serve.json open_loop curve is missing \"$key\"" >&2; exit 1; }
    done
    grep -q '"observed_miss_rate": null' BENCH_serve.json \
        && { echo "profile replay ran but observed_miss_rate is null" >&2; exit 1; }
    for series in esp_serve_requests_total esp_serve_request_us \
                  esp_serve_predict_compute_us esp_serve_batch_size \
                  esp_serve_shards esp_serve_shard_0_queue_depth \
                  esp_serve_shard_0_cache_hit_ratio esp_serve_shard_0_cache_entries \
                  esp_serve_model_version esp_serve_reloads_total \
                  esp_ledger_profile_records_total esp_ledger_observed_miss_rate \
                  esp_ledger_calibration_ece; do
        grep -q "$series" metrics_serve.prom \
            || { echo "serve exposition is missing $series" >&2; exit 1; }
    done
    rm -f metrics_serve.prom

    echo "==> telemetry sidecar smoke (esp-serve --http-addr, scraped via esp-client get)"
    ./target/release/esp-serve --synthetic 24,8,7 --addr 127.0.0.1:0 \
        --http-addr 127.0.0.1:0 2> serve_sidecar.log &
    serve_pid=$!
    tcp_addr=""; http_addr=""
    for _ in $(seq 1 100); do
        tcp_addr=$(sed -n 's/^esp-serve listening on \([^ ]*\) .*/\1/p' serve_sidecar.log)
        http_addr=$(sed -n 's|^esp-serve telemetry on http://\([^ ]*\) .*|\1|p' serve_sidecar.log)
        [[ -n "$tcp_addr" && -n "$http_addr" ]] && break
        sleep 0.1
    done
    [[ -n "$tcp_addr" && -n "$http_addr" ]] \
        || { echo "esp-serve did not print its bound addresses:" >&2; \
             cat serve_sidecar.log >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
    ./target/release/esp-client get --addr "$http_addr" --path /metrics > sidecar_metrics.prom
    for series in esp_serve_requests_total esp_ledger_sites \
                  esp_ledger_observed_miss_rate esp_ledger_calibration_ece; do
        grep -q "$series" sidecar_metrics.prom \
            || { echo "/metrics is missing $series" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
    done
    ./target/release/esp-client get --addr "$http_addr" --path /healthz > sidecar_healthz.json
    grep -q '"protocol_version": 4' sidecar_healthz.json \
        || { echo "/healthz is missing protocol_version 4" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
    grep -q '"ledger_enabled": true' sidecar_healthz.json \
        || { echo "/healthz says the default-on ledger is off" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
    grep -q '"shard_health": \[' sidecar_healthz.json \
        || { echo "/healthz is missing the shard_health array" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
    ./target/release/esp-client get --addr "$http_addr" --path '/sitez?top=5' > sidecar_sitez.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PYEOF'
import json
doc = json.load(open("sidecar_sitez.json"))
assert isinstance(doc.get("sites"), list), "/sitez has no sites array"
summary = doc.get("summary")
assert isinstance(summary, dict), "/sitez has no summary object"
for k in ("sites", "served", "profile_records", "observed_miss_rate", "calibration_ece"):
    assert k in summary, f"/sitez summary is missing {k!r}"
print(f"sitez OK: {len(doc['sites'])} hot sites, {summary['served']} served")
PYEOF
    else
        grep -q '"sites": \[' sidecar_sitez.json \
            || { echo "/sitez is missing the sites array" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
    fi
    ./target/release/esp-client shutdown --addr "$tcp_addr" > /dev/null
    wait "$serve_pid"
    rm -f serve_sidecar.log sidecar_metrics.prom sidecar_healthz.json sidecar_sitez.json

    echo "==> hot-reload smoke (2 shards, registry publish mid-run, version gauge flips)"
    rm -rf target/verify_reload_registry
    ./target/release/esp-client registry publish --dir target/verify_reload_registry \
        --name smoke --synthetic 16,6,41 > /dev/null
    ./target/release/esp-serve --registry target/verify_reload_registry --name smoke \
        --shards 2 --reload-watch 50 --addr 127.0.0.1:0 \
        --http-addr 127.0.0.1:0 2> serve_reload.log &
    reload_pid=$!
    tcp_addr=""; http_addr=""
    for _ in $(seq 1 100); do
        tcp_addr=$(sed -n 's/^esp-serve listening on \([^ ]*\) .*/\1/p' serve_reload.log)
        http_addr=$(sed -n 's|^esp-serve telemetry on http://\([^ ]*\) .*|\1|p' serve_reload.log)
        [[ -n "$tcp_addr" && -n "$http_addr" ]] && break
        sleep 0.1
    done
    [[ -n "$tcp_addr" && -n "$http_addr" ]] \
        || { echo "esp-serve (reload smoke) did not print its bound addresses:" >&2; \
             cat serve_reload.log >&2; kill "$reload_pid" 2>/dev/null; exit 1; }
    ./target/release/esp-client info --addr "$tcp_addr" --model smoke | grep -q '\[smoke@1\]' \
        || { echo "reload smoke: expected smoke@1 before publish" >&2; kill "$reload_pid" 2>/dev/null; exit 1; }
    ./target/release/esp-client registry publish --dir target/verify_reload_registry \
        --name smoke --synthetic 16,6,42 > /dev/null
    reloaded=0
    for _ in $(seq 1 100); do
        ./target/release/esp-client get --addr "$http_addr" --path /metrics > reload_metrics.prom
        if grep -q '^esp_serve_model_version 2$' reload_metrics.prom; then reloaded=1; break; fi
        sleep 0.1
    done
    [[ "$reloaded" -eq 1 ]] \
        || { echo "reload smoke: esp_serve_model_version never reached 2" >&2; \
             kill "$reload_pid" 2>/dev/null; exit 1; }
    grep -q '^esp_serve_reloads_total 1$' reload_metrics.prom \
        || { echo "reload smoke: esp_serve_reloads_total != 1" >&2; kill "$reload_pid" 2>/dev/null; exit 1; }
    grep -q '^esp_serve_shards 2$' reload_metrics.prom \
        || { echo "reload smoke: esp_serve_shards != 2" >&2; kill "$reload_pid" 2>/dev/null; exit 1; }
    for shard in 0 1; do
        for family in queue_depth cache_hit_ratio cache_entries; do
            grep -q "^esp_serve_shard_${shard}_${family} " reload_metrics.prom \
                || { echo "reload smoke: missing esp_serve_shard_${shard}_${family}" >&2; \
                     kill "$reload_pid" 2>/dev/null; exit 1; }
        done
    done
    ./target/release/esp-client info --addr "$tcp_addr" --model smoke@2 | grep -q '\[smoke@2\]' \
        || { echo "reload smoke: smoke@2 not served after reload" >&2; kill "$reload_pid" 2>/dev/null; exit 1; }
    ./target/release/esp-client shutdown --addr "$tcp_addr" > /dev/null
    wait "$reload_pid"
    rm -f serve_reload.log reload_metrics.prom
    rm -rf target/verify_reload_registry

    echo "==> observability smoke (traced Table 4 subset, writes trace + exposition)"
    cargo run --release --offline -q -p esp-bench --bin repro_tables -- \
        table4 --quick --subset sort,grep,sed,gzip \
        --trace-out trace_obs.json --metrics-out metrics_obs.prom > /dev/null
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PYEOF'
import json
events = json.load(open("trace_obs.json"))
assert isinstance(events, list) and events, "trace is empty or not a list"
assert any(e.get("ph") == "X" for e in events), "no complete spans in trace"
names = {e.get("name") for e in events}
for needed in ("build_suite", "table4_fold", "restart", "epoch"):
    assert needed in names, f"trace is missing `{needed}` spans"
print(f"trace OK: {len(events)} events, spans include {sorted(names)[:8]}…")
PYEOF
    else
        # No python3: at least check the trace has the span names in shape.
        for name in build_suite table4_fold epoch; do
            grep -q "\"name\":\"$name\"" trace_obs.json \
                || { echo "trace is missing \`$name\` spans" >&2; exit 1; }
        done
    fi
    for fam in esp_runtime_ esp_train_ esp_eval_; do
        grep -q "$fam" metrics_obs.prom \
            || { echo "metrics exposition is missing the $fam family" >&2; exit 1; }
    done
    echo "metrics OK: $(grep -c '^# TYPE' metrics_obs.prom) families exposed"
    rm -f trace_obs.json metrics_obs.prom

    echo "==> dynamic-predictor arena smoke (2-program dyn table, cached traces)"
    cargo run --release --offline -q -p esp-bench --bin repro_tables -- \
        --dynamic --quick --subset sort,grep --trace-dir target/esptraces \
        | tee table_dyn.txt
    grep -q 'ESP+TAGE' table_dyn.txt \
        || { echo "dyn table is missing the ESP+TAGE hybrid column" >&2; exit 1; }
    grep -Eq 'wins warmup|warmup tie' table_dyn.txt \
        || { echo "dyn table is missing the warmup verdict" >&2; exit 1; }
    rm -f table_dyn.txt

    echo "==> f32 quantization gate (2-fold Table 4 subset, flip bound 0.05)"
    cargo run --release --offline -q -p esp-bench --bin repro_tables -- \
        table4 --quick --subset sort,grep --precision f32 --flip-bound 0.05 \
        | tee table4_f32.txt
    grep -q 'f32_flip_rate=' table4_f32.txt \
        || { echo "gate report is missing f32_flip_rate" >&2; exit 1; }
    grep -q 'gate: PASS' table4_f32.txt \
        || { echo "f32 flip rate exceeded the 0.05 bound" >&2; exit 1; }
    rm -f table4_f32.txt

    echo "==> extended-features smoke (2-fold Table 4 subset, extended vs baseline)"
    cargo run --release --offline -q -p esp-bench --bin repro_tables -- \
        table4 --quick --subset sort,grep --features extended \
        | tee table4_ext.txt
    grep -q 'extended_vs_baseline:' table4_ext.txt \
        || { echo "extended run is missing the extended_vs_baseline delta line" >&2; exit 1; }
    rm -f table4_ext.txt
fi

echo "==> verify OK"
