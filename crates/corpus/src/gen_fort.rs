//! Deterministic Fort source generation from idiom templates (the Fortran
//! counterpart of [`crate::gen_cee`]; no pointers, matching the paper's
//! observation that pointers are very rare in FORTRAN).

use std::fmt::Write as _;

use esp_runtime::Pcg32;

use crate::gen_cee::name_seed;
use crate::personality::Personality;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Idiom {
    DoKernel,
    MarkKernel,
    Convergence,
    CheckedUpdate,
    CondMax,
    ModStride,
    RareFixup,
    HotFixup,
    Triangular,
    NoiseParity,
    GuardedDiv,
}

struct Gen<'p> {
    rng: Pcg32,
    out: String,
    p: &'p Personality,
    n: u32,
    entries: Vec<(String, String)>,
    have_fixup: bool,
}

impl Gen<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.n += 1;
        format!("{prefix}{}", self.n)
    }

    fn lcg(var: &str) -> String {
        format!("{var} = MOD({var} * 1103515245 + 12345, 2147483647)")
    }

    /// Shared rare-path subroutine (gives the Call/Store heuristics cold
    /// paths to see).
    fn ensure_fixup(&mut self) -> String {
        if !self.have_fixup {
            self.have_fixup = true;
            self.out.push_str(
                "SUBROUTINE FIXUP(A, K)\n  INTEGER A(*)\n  INTEGER K\n  A(1) = K\n  A(2) = MOD(K, 13)\n  RETURN\nEND\n\n",
            );
        }
        "fixup".to_string()
    }

    fn emit(&mut self, idiom: Idiom) {
        let name = match idiom {
            Idiom::DoKernel => self.do_kernel(),
            Idiom::MarkKernel => self.mark_kernel(),
            Idiom::Convergence => self.convergence(),
            Idiom::CheckedUpdate => self.checked_update(),
            Idiom::CondMax => self.cond_max(),
            Idiom::ModStride => self.mod_stride(),
            Idiom::RareFixup => self.rare_fixup(),
            Idiom::HotFixup => self.hot_fixup(),
            Idiom::Triangular => self.triangular(),
            Idiom::NoiseParity => self.noise_parity(),
            Idiom::GuardedDiv => self.guarded_div(),
        };
        let arg = format!("MOD(R, {})", self.rng.gen_range(1000..100000));
        self.entries.push((name, arg));
    }

    fn do_kernel(&mut self) -> String {
        let f = self.fresh("dker");
        let sz = self.p.loop_trip + self.rng.gen_range(0..self.p.loop_trip.max(2));
        // Direction and bias are randomized (see gen_cee::sum_loop): the
        // compare opcode carries learnable evidence no fixed heuristic uses.
        // see gen_cee::sum_loop: spread thresholds create site-specific
        // majorities under identical features.
        let thr = if self.rng.gen_bool(0.5) {
            self.rng.gen_range(60..260)
        } else {
            self.rng.gen_range(740..940)
        };
        let op = if self.rng.gen_bool(0.5) { ".GT." } else { ".LT." };
        let passes = self.rng.gen_range(3..6);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, Q, S
  INTEGER A({sz})
  X = SEED + 17
  S = 0
  DO I = 1, {sz}
    {lcg}
    A(I) = MOD(X, 1000)
  ENDDO
  DO Q = 1, {passes}
    DO I = 1, {sz}
      IF (A(I) {op} {thr}) THEN
        S = S + A(I)
      ELSE
        S = S + 1
      ENDIF
    ENDDO
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    fn convergence(&mut self) -> String {
        let f = self.fresh("conv");
        let sz = self.p.loop_trip + self.rng.gen_range(4..30);
        let maxit = self.rng.gen_range(8..25);
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, I, ITER
  REAL A({sz})
  REAL ERR, D
  DO I = 1, {sz}
    A(I) = REAL(MOD(SEED + I * 37, 1000))
  ENDDO
  ERR = 1000.0
  ITER = 0
  DO WHILE (ERR .GT. 1.0 .AND. ITER .LT. {maxit})
    ERR = 0.0
    DO I = 2, {sz}
      D = (A(I) - A(I - 1)) * 0.5
      IF (ABS(D) .GT. ERR) THEN
        ERR = ABS(D)
      ENDIF
      A(I) = A(I) - D * 0.6
    ENDDO
    ITER = ITER + 1
  ENDDO
  {F} = ITER
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    /// The tomcatv texture (see `gen_cee::checked_update`): an
    /// almost-always-true forward guard whose hot arm stores.
    fn checked_update(&mut self) -> String {
        let f = self.fresh("cupd");
        let sz = self.p.loop_trip + self.rng.gen_range(4..30);
        let passes = self.rng.gen_range(5..9);
        // see gen_cee::checked_update: hot (ABS .GT.) vs rare (.LT.)
        let hot = self.rng.gen_bool(0.7);
        let guard = if hot {
            "ABS(V(I)) .GT. 0.5"
        } else {
            "V(I) .LT. 0.5"
        };
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, I, P, SKIPPED
  REAL V({sz})
  DO I = 1, {sz}
    V(I) = REAL(MOD(SEED + I * 53, 1000) + 1)
  ENDDO
  SKIPPED = 0
  DO P = 1, {passes}
    DO I = 1, {sz}
      IF ({guard}) THEN
        V(I) = V(I) * 0.25
      ELSE
        SKIPPED = SKIPPED + 1
      ENDIF
    ENDDO
  ENDDO
  {F} = SKIPPED
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    fn cond_max(&mut self) -> String {
        let f = self.fresh("cmax");
        let sz = self.p.loop_trip + self.rng.gen_range(2..20);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, BEST
  REAL V({sz})
  X = SEED + 5
  DO I = 1, {sz}
    {lcg}
    V(I) = REAL(MOD(X, 10000)) * 0.125
  ENDDO
  BEST = 1
  DO I = 2, {sz}
    IF (V(I) .GT. V(BEST)) THEN
      BEST = I
    ENDIF
  ENDDO
  {F} = BEST
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    fn mod_stride(&mut self) -> String {
        let f = self.fresh("strd");
        let sz = self.p.loop_trip * 2 + self.rng.gen_range(4..20);
        let m = self.rng.gen_range(3..9);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, S
  X = SEED + 11
  S = 0
  DO I = 1, {sz}
    {lcg}
    IF (MOD(I, {m}) .EQ. 0) THEN
      S = S + MOD(X, 50)
    ENDIF
    IF (MOD(X, 2) .EQ. 0) THEN
      S = S + 1
    ENDIF
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    fn rare_fixup(&mut self) -> String {
        let fixup = self.ensure_fixup();
        let f = self.fresh("rare");
        let n = self.p.loop_trip * 2 + self.rng.gen_range(0..20);
        let rarity = self.p.error_rarity.max(2);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, S
  INTEGER BUF(4)
  X = SEED + 23
  S = 0
  DO I = 1, {n}
    {lcg}
    IF (MOD(X, {rarity}) .EQ. 0) THEN
      CALL {FX}(BUF, MOD(X, 100))
      S = S + BUF(1)
    ELSE
      S = S + MOD(X, 7)
    ENDIF
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f,
            FX = fixup
        )
        .expect("write to string");
        f
    }

    /// Guarded array store on the *hot* path — anti-aligned with the Store
    /// heuristic, like `gen_cee::mark_loop`.
    fn mark_kernel(&mut self) -> String {
        let f = self.fresh("mker");
        let sz = self.p.loop_trip + self.rng.gen_range(4..20);
        let m = self.rng.gen_range(5..10);
        let op = if self.rng.gen_bool(0.55) { ".NE." } else { ".EQ." };
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, S
  INTEGER B({sz})
  X = SEED + 31
  B(1) = 0
  DO I = 1, {sz}
    {lcg}
    IF (MOD(X, {m}) {op} 0) THEN
      B(I) = MOD(X, 100)
    ENDIF
  ENDDO
  S = 0
  DO I = 1, {sz}
    S = S + MOD(B(I), 7)
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    /// Subroutine calls on the common path (aligned with the Call
    /// heuristic), balancing `rare_fixup`.
    fn hot_fixup(&mut self) -> String {
        let fixup = self.ensure_fixup();
        let f = self.fresh("hfix");
        let n = self.p.loop_trip + self.rng.gen_range(5..25);
        let m = self.rng.gen_range(3..6);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, S
  INTEGER BUF(4)
  X = SEED + 53
  S = 0
  DO I = 1, {n}
    {lcg}
    IF (MOD(X, {m}) .NE. 0) THEN
      CALL {FX}(BUF, MOD(X, 50))
      S = S + BUF(2)
    ELSE
      S = S - 1
    ENDIF
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f,
            FX = fixup
        )
        .expect("write to string");
        f
    }

    fn triangular(&mut self) -> String {
        let f = self.fresh("tri");
        let sz = (self.p.loop_trip / 2 + self.rng.gen_range(6..16)).max(8);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, J, S
  INTEGER M({sq})
  X = SEED + 29
  DO I = 1, {sq}
    {lcg}
    M(I) = MOD(X, 100)
  ENDDO
  S = 0
  DO I = 1, {sz}
    DO J = I, {sz}
      S = S + M((I - 1) * {sz} + J)
      IF (S .GT. 1000000) THEN
        S = S - 999983
      ENDIF
    ENDDO
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f,
            sq = sz * sz
        )
        .expect("write to string");
        f
    }

    fn noise_parity(&mut self) -> String {
        let f = self.fresh("nois");
        let n = self.p.loop_trip * 2 + self.rng.gen_range(0..25);
        let shift = 1i64 << self.rng.gen_range(5..12);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, S
  X = SEED + 41
  S = 0
  DO I = 1, {n}
    {lcg}
    IF (MOD(X / {shift}, 2) .EQ. 0) THEN
      S = S + 1
    ELSE
      S = S - 1
    ENDIF
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }

    fn guarded_div(&mut self) -> String {
        let f = self.fresh("gdiv");
        let n = self.p.loop_trip + self.rng.gen_range(0..10);
        let m = self.rng.gen_range(10..40);
        let lcg = Self::lcg("X");
        write!(
            self.out,
            r#"INTEGER FUNCTION {f}(SEED)
  INTEGER SEED, X, I, S, D
  X = SEED + 11
  S = 1
  DO I = 1, {n}
    {lcg}
    D = MOD(X, {m})
    IF (D .NE. 0) THEN
      S = S + MOD(X, 10000) / D
    ENDIF
    IF (S .LT. 0) THEN
      S = 0
    ENDIF
  ENDDO
  {F} = S
  RETURN
END

"#,
            F = f
        )
        .expect("write to string");
        f
    }
}

/// Generate the Fort source of a whole benchmark.
pub(crate) fn generate(name: &str, p: &Personality) -> String {
    let mut g = Gen {
        rng: Pcg32::seed_from_u64(name_seed(name) ^ 0xF0F0F0F0F0F0F0F0),
        out: format!("! benchmark `{name}` (generated)\n\n"),
        p,
        n: 0,
        entries: Vec::new(),
        have_fixup: false,
    };

    let deck: Vec<(u32, Idiom)> = vec![
        (3, Idiom::DoKernel),
        (2, Idiom::MarkKernel),
        (p.float_weight, Idiom::Convergence),
        (p.float_weight + 1, Idiom::CheckedUpdate),
        (p.float_weight, Idiom::CondMax),
        (2, Idiom::ModStride),
        (p.call_weight, Idiom::RareFixup),
        (p.call_weight, Idiom::HotFixup),
        (1, Idiom::Triangular),
        (p.noise_weight, Idiom::NoiseParity),
        (2, Idiom::GuardedDiv),
    ];
    let total: u32 = deck.iter().map(|(w, _)| *w).sum();
    for _ in 0..p.funcs {
        let mut pick = g.rng.gen_range(0..total.max(1));
        let mut chosen = Idiom::DoKernel;
        for (w, idiom) in &deck {
            if pick < *w {
                chosen = *idiom;
                break;
            }
            pick -= w;
        }
        g.emit(chosen);
    }

    let mut main = String::from("PROGRAM MAIN\n  INTEGER ACC, R, IT\n  ACC = 0\n  R = 987654321\n");
    let _ = writeln!(main, "  DO IT = 1, {}", p.main_iters);
    let _ = writeln!(main, "    {}", Gen::lcg("R"));
    for (f, arg) in &g.entries {
        let _ = writeln!(main, "    ACC = ACC + {}({})", f.to_uppercase(), arg);
    }
    main.push_str("  ENDDO\nEND\n");
    g.out.push_str(&main);
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_source_parses() {
        let p = Personality {
            ptr_weight: 0,
            ..Personality::default()
        };
        let src = generate("fort-unit", &p);
        let module = esp_lang::fort::parse("fort-unit", &src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        assert!(module.funcs.iter().any(|f| f.name == "main"));
    }

    #[test]
    fn all_idioms_produce_valid_functions() {
        let p = Personality {
            ptr_weight: 0,
            ..Personality::default()
        };
        let mut g = Gen {
            rng: Pcg32::seed_from_u64(name_seed("fort-coverage")),
            out: String::new(),
            p: &p,
            n: 0,
            entries: Vec::new(),
            have_fixup: false,
        };
        for idiom in [
            Idiom::DoKernel,
            Idiom::MarkKernel,
            Idiom::Convergence,
            Idiom::CheckedUpdate,
            Idiom::CondMax,
            Idiom::ModStride,
            Idiom::RareFixup,
            Idiom::HotFixup,
            Idiom::Triangular,
            Idiom::NoiseParity,
            Idiom::GuardedDiv,
        ] {
            g.emit(idiom);
        }
        for marker in ["dker", "mker", "conv", "cupd", "cmax", "strd", "rare", "hfix", "tri", "nois", "gdiv"] {
            assert!(
                g.out.to_lowercase().contains(marker),
                "idiom {marker} missing:\n{}",
                g.out
            );
        }
        let mut src = g.out.clone();
        src.push_str("PROGRAM MAIN\n  INTEGER X\n  X = 0\nEND\n");
        esp_lang::fort::parse("t", &src).expect("parses");
    }
}
