//! Program-based profile estimation with ESP — the paper's stated next goal
//! (§6): use the network's *probability* output (not just the thresholded
//! bit) to estimate block execution frequencies, Wu & Larus style, and
//! compare against the real profile.
//!
//! ```text
//! cargo run --release --example profile_estimation [program]
//! ```

use esp_repro::corpus::suite;
use esp_repro::esp::{EspConfig, EspModel, Learner, TrainingProgram};
use esp_repro::eval::data::BenchData;
use esp_repro::eval::freq::evaluate_estimation;
use esp_repro::heur::{BranchCtx, Dshc, HeuristicRates};
use esp_repro::ir::ProgramAnalysis;
use esp_repro::lang::CompilerConfig;
use esp_repro::nnet::MlpConfig;

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "sort".to_string());
    let cfg = CompilerConfig::default();
    let all = suite();
    let bench = all
        .iter()
        .find(|b| b.name == target)
        .unwrap_or_else(|| panic!("unknown benchmark `{target}`"));
    println!("compiling + profiling `{target}`…");
    let data = BenchData::build(bench, &cfg);

    // Train ESP on six other programs of the same language.
    println!("training ESP on sibling programs…");
    let mut owned = Vec::new();
    for other in all
        .iter()
        .filter(|b| b.lang == bench.lang && b.name != target)
        .take(6)
    {
        let p = other.compile(&cfg).expect("compiles");
        let a = ProgramAnalysis::analyze(&p);
        let pr = esp_repro::corpus::profile(&p).expect("runs");
        owned.push((p, a, pr));
    }
    let corpus: Vec<TrainingProgram<'_>> = owned
        .iter()
        .map(|(p, a, pr)| TrainingProgram {
            prog: p,
            analysis: a,
            profile: pr,
        })
        .collect();
    let model = EspModel::train(
        &corpus,
        &EspConfig {
            learner: Learner::Net(MlpConfig {
                hidden: 10,
                max_epochs: 120,
                restarts: 1,
                ..MlpConfig::default()
            }),
            ..EspConfig::default()
        },
    );

    // Probability sources to compare.
    println!("\nblock-frequency estimation quality on `{target}`:");
    println!("{:<22} {:>14} {:>12}", "probability source", "log-corr", "MAE");

    let profile = data.profile.clone();
    let mut oracle = |site| {
        profile
            .counts(site)
            .and_then(|c| c.taken_prob())
            .unwrap_or(0.5)
    };
    let r = evaluate_estimation(&data, &mut oracle);
    println!("{:<22} {:>14.3} {:>12.3}", "profile oracle", r.log_correlation, r.mean_abs_error);

    let mut esp_probs = |site| model.predict_prob(&data.prog, &data.analysis, site);
    let r = evaluate_estimation(&data, &mut esp_probs);
    println!("{:<22} {:>14.3} {:>12.3}", "ESP network", r.log_correlation, r.mean_abs_error);

    let dshc = Dshc::new(HeuristicRates::ball_larus_mips());
    let mut dshc_probs = |site| {
        dshc.prob_taken(&BranchCtx::new(&data.prog, &data.analysis, site))
            .unwrap_or(0.5)
    };
    let r = evaluate_estimation(&data, &mut dshc_probs);
    println!("{:<22} {:>14.3} {:>12.3}", "DSHC evidence", r.log_correlation, r.mean_abs_error);

    let mut flat = |_| 0.5;
    let r = evaluate_estimation(&data, &mut flat);
    println!("{:<22} {:>14.3} {:>12.3}", "flat 0.5", r.log_correlation, r.mean_abs_error);

    println!(
        "\n(the oracle bounds what any static estimator can do; ESP and DSHC should\n\
         land between the oracle and the flat baseline)"
    );
}
