use esp_heur::{Aphc, BranchCtx, Btfnt};
use esp_ir::{Lang, ProgramAnalysis};
use esp_lang::{compile_source, CompilerConfig};

fn main() {
    let src = r#"
int dker(int seed) {
    int a[50];
    int i;
    int s = 0;
    int x = seed + 17;
    for (i = 0; i < 50; i = i + 1) {
        x = (x * 1103515245 + 12345) % 2147483647;
        a[i] = x % 1000;
    }
    for (i = 0; i < 50; i = i + 1) {
        if (a[i] > 150) { s = s + a[i]; } else { s = s + 1; }
    }
    return s;
}
int main() {
    int it;
    int acc = 0;
    for (it = 0; it < 20; it = it + 1) { acc = acc + dker(it * 977); }
    return acc % 1000;
}
"#;
    let prog = compile_source("diag", src, Lang::C, &CompilerConfig::default()).unwrap();
    let analysis = ProgramAnalysis::analyze(&prog);
    let out = esp_exec::run(&prog, &esp_exec::ExecLimits::default()).unwrap();
    let aphc = Aphc::table1_order();
    println!("{}", prog);
    for site in prog.branch_sites() {
        let ctx = BranchCtx::new(&prog, &analysis, site);
        let c = out.profile.counts(site);
        let (exec, taken) = c.map(|c| (c.executed, c.taken)).unwrap_or((0, 0));
        println!(
            "{site}: exec {exec} taken {taken} | BTFNT {} | APHC {:?}",
            Btfnt.predict(&ctx),
            aphc.predict_with_source(&ctx).map(|(h, p)| format!("{} -> {}", h.name(), p)),
        );
    }
}
