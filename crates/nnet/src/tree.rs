//! A CART-style decision-tree learner.
//!
//! The paper notes (§3.1.2) that "preliminary results we have obtained using
//! decision trees instead of neural networks are comparable to the neural
//! net results presented here. Moreover, decision trees are easier to use…".
//! This module provides that alternative learner over the same encoded
//! feature vectors and the same weighted examples, so the two can be compared
//! head-to-head (see the `ablation_tree` bench).

use crate::mlp::TrainExample;

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum total example weight needed to attempt a split.
    pub min_split_weight: f64,
    /// Minimum weighted impurity improvement for a split to be kept.
    /// Zero (the default) allows zero-gain splits on impure nodes, which a
    /// greedy learner needs to get through XOR-like feature interactions;
    /// depth still bounds growth.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_split_weight: 1e-6,
            min_gain: 0.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Weighted mean taken-probability of the examples in the leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// `x[feature] <= threshold`
        left: Box<Node>,
        /// `x[feature] > threshold`
        right: Box<Node>,
    },
}

/// A trained decision tree predicting taken-probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    inputs: usize,
}

/// Weighted mean target of a set of examples (0.5 for zero weight).
fn mean_target(idx: &[usize], data: &[TrainExample]) -> f64 {
    let mut w = 0.0;
    let mut s = 0.0;
    for &i in idx {
        w += data[i].weight;
        s += data[i].weight * data[i].target;
    }
    if w > 0.0 {
        s / w
    } else {
        0.5
    }
}

/// Weighted misprediction cost of predicting the majority direction —
/// the same objective the network minimises, so the two learners are
/// directly comparable.
fn impurity(idx: &[usize], data: &[TrainExample]) -> f64 {
    let mut w = 0.0;
    let mut taken = 0.0;
    for &i in idx {
        w += data[i].weight;
        taken += data[i].weight * data[i].target;
    }
    // Predict taken iff weighted mean > 0.5; cost is the minority mass.
    taken.min(w - taken)
}

fn build(idx: Vec<usize>, data: &[TrainExample], depth: usize, cfg: &TreeConfig) -> Node {
    let prob = mean_target(&idx, data);
    let total_w: f64 = idx.iter().map(|&i| data[i].weight).sum();
    if depth >= cfg.max_depth || total_w < cfg.min_split_weight || idx.len() < 2 {
        return Node::Leaf { prob };
    }
    let parent_cost = impurity(&idx, data);
    if parent_cost <= 0.0 {
        return Node::Leaf { prob };
    }

    let dims = data[idx[0]].x.len();
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut order = idx.clone();
    for f in 0..dims {
        order.sort_unstable_by(|&a, &b| {
            data[a].x[f]
                .partial_cmp(&data[b].x[f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Sweep thresholds between distinct consecutive values, maintaining
        // left-side weight/taken sums incrementally.
        let mut lw = 0.0;
        let mut lt = 0.0;
        let tw: f64 = order.iter().map(|&i| data[i].weight).sum();
        let tt: f64 = order.iter().map(|&i| data[i].weight * data[i].target).sum();
        for k in 0..order.len() - 1 {
            let i = order[k];
            lw += data[i].weight;
            lt += data[i].weight * data[i].target;
            let x_here = data[i].x[f];
            let x_next = data[order[k + 1]].x[f];
            if x_next <= x_here {
                continue;
            }
            let rw = tw - lw;
            let rt = tt - lt;
            let cost = lt.min(lw - lt) + rt.min(rw - rt);
            let gain = parent_cost - cost;
            if gain >= cfg.min_gain && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, 0.5 * (x_here + x_next)));
            }
        }
    }

    match best {
        None => Node::Leaf { prob },
        Some((_, feature, threshold)) => {
            let (l, r): (Vec<usize>, Vec<usize>) = idx
                .into_iter()
                .partition(|&i| data[i].x[feature] <= threshold);
            if l.is_empty() || r.is_empty() {
                return Node::Leaf { prob };
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(l, data, depth + 1, cfg)),
                right: Box::new(build(r, data, depth + 1, cfg)),
            }
        }
    }
}

impl DecisionTree {
    /// Train a tree on weighted examples.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or examples disagree on dimensionality.
    pub fn train(data: &[TrainExample], cfg: &TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty corpus");
        let inputs = data[0].x.len();
        assert!(
            data.iter().all(|d| d.x.len() == inputs),
            "inconsistent feature dimensionality"
        );
        let idx: Vec<usize> = (0..data.len()).collect();
        DecisionTree {
            root: build(idx, data, 0, cfg),
            inputs,
        }
    }

    /// Estimated probability that the branch is taken.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.inputs, "input dimensionality mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Hard taken/not-taken decision at 0.5.
    pub fn predict_taken(&self, x: &[f64]) -> bool {
        self.predict(x) > 0.5
    }

    /// Number of leaves (the tree's "rule count").
    pub fn num_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth of the tree.
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Render the tree as indented if-then rules (the paper highlights that
    /// tree knowledge "can be automatically translated into simple if-then
    /// rules").
    pub fn to_rules(&self) -> String {
        fn walk(n: &Node, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match n {
                Node::Leaf { prob } => {
                    let dir = if *prob > 0.5 { "TAKEN" } else { "NOT-TAKEN" };
                    out.push_str(&format!("{pad}predict {dir} (p = {prob:.3})\n"));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push_str(&format!("{pad}if x[{feature}] <= {threshold:.4}:\n"));
                    walk(left, indent + 1, out);
                    out.push_str(&format!("{pad}else:\n"));
                    walk(right, indent + 1, out);
                }
            }
        }
        let mut s = String::new();
        walk(&self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(x: Vec<f64>, target: f64, weight: f64) -> TrainExample {
        TrainExample { x, target, weight }
    }

    #[test]
    fn learns_threshold_rule() {
        let data: Vec<TrainExample> = (0..50)
            .map(|i| {
                let x = i as f64 / 25.0 - 1.0;
                ex(vec![x], if x > 0.2 { 1.0 } else { 0.0 }, 1.0)
            })
            .collect();
        let t = DecisionTree::train(&data, &TreeConfig::default());
        assert!(t.predict(&[0.9]) > 0.5);
        assert!(t.predict(&[-0.5]) < 0.5);
        assert!(t.num_leaves() >= 2);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn learns_xor_with_two_levels() {
        let mut data = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let t = if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 };
            data.push(ex(vec![a, b], t, 1.0));
        }
        let t = DecisionTree::train(&data, &TreeConfig::default());
        assert!(t.predict(&[0.0, 1.0]) > 0.5);
        assert!(t.predict(&[1.0, 1.0]) < 0.5);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn respects_weights() {
        let data = vec![
            ex(vec![0.0], 1.0, 10.0),
            ex(vec![0.0], 0.0, 1.0), // same x, lighter
        ];
        let t = DecisionTree::train(&data, &TreeConfig::default());
        assert!(t.predict(&[0.0]) > 0.5);
    }

    #[test]
    fn depth_limit_enforced() {
        let data: Vec<TrainExample> = (0..128)
            .map(|i| {
                let x = i as f64;
                ex(vec![x], (i % 2) as f64, 1.0) // maximally unsplittable
            })
            .collect();
        let t = DecisionTree::train(
            &data,
            &TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
        );
        assert!(t.depth() <= 3);
    }

    #[test]
    fn rules_render() {
        let data = vec![ex(vec![0.0], 0.0, 1.0), ex(vec![1.0], 1.0, 1.0)];
        let t = DecisionTree::train(&data, &TreeConfig::default());
        let rules = t.to_rules();
        assert!(rules.contains("if x[0] <="));
        assert!(rules.contains("TAKEN"));
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = vec![ex(vec![0.0], 1.0, 1.0), ex(vec![1.0], 1.0, 1.0)];
        let t = DecisionTree::train(&data, &TreeConfig::default());
        assert_eq!(t.num_leaves(), 1);
        assert!(t.predict_taken(&[0.5]));
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_training_rejected() {
        let _ = DecisionTree::train(&[], &TreeConfig::default());
    }
}
