//! Evaluation harness: miss-rate accounting and renderers for every table
//! and figure in the paper's evaluation section (§4–§5).
//!
//! * [`table3()`](fn@table3) — program statistics (instructions traced, %conditional
//!   branches, %taken, branch-site quantiles, static sites);
//! * [`table4()`](fn@table4) — the headline comparison: BTFNT / APHC / DSHC(B&L) /
//!   DSHC(Ours) / ESP / perfect static, with leave-one-out cross-validation
//!   inside the C and Fortran groups;
//! * [`table5()`](fn@table5) — per-program heuristic detail (loop branches, coverage,
//!   default-random accounting);
//! * [`table6()`](fn@table6) — per-heuristic miss rates across architectures and
//!   languages;
//! * [`table7()`](fn@table7) — one program under four compiler configurations;
//! * [`fig1`] — the network topology; [`fig2`](casestudy::fig2) — the
//!   tomcatv case study;
//! * [`table_dyn`](fn@table_dyn) — beyond the paper: the static schemes against
//!   trace-driven dynamic predictors (bimodal / gshare / TAGE / ESP-seeded
//!   TAGE hybrid) replayed over recorded `.esptrace` outcome streams.
//!
//! The entry point used by the `repro_tables` binary and the integration
//! tests is [`SuiteData::build`] + the per-table `render`/`compute`
//! functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod casestudy;
pub mod data;
pub mod fmt;
pub mod freq;
pub mod miss;
pub mod quant;
pub mod scheme_study;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table_dyn;
pub mod table6;
pub mod table7;

pub use data::{BenchData, SuiteData};
pub use miss::{expected_misses, miss_rate, Prediction};
pub use table3::{table3, Table3Row};
pub use quant::{FoldQuantReport, PublishOutcome, QuantGateConfig, QuantGateReport};
pub use table4::{
    compute_with_quant, table4, train_config_stamp, ModelCache, Table4Config, Table4Row,
};
pub use table5::{table5, Table5Row};
pub use table_dyn::{table_dyn, PooledRates, TableDynConfig, TableDynReport, TableDynRow};
pub use table6::table6;
pub use table7::table7;

/// Render Figure 1: the branch-prediction network topology actually used.
pub fn fig1(hidden: usize) -> String {
    format!(
        "Figure 1: the branch prediction neural network\n\
         \n\
         output (branch probability): 1 unit, y = 0.5*tanh(z) + 0.5\n\
         hidden layer:                {hidden} tanh units\n\
         input (static feature set):  {} units (one-hot Table 2 encoding)\n\
         free parameters:             {}\n",
        esp_core::ENCODED_DIM,
        esp_core::ENCODED_DIM * hidden + hidden + hidden + 1,
    )
}
