//! Determinism A/B for the analyses and the linter: two independent runs
//! over freshly-compiled programs must produce byte-identical reports.
//! Every diagnostic and fact list is RPO/`BranchId`-sorted by construction;
//! this pins that property against regressions (e.g. someone iterating a
//! hash map while assembling findings).

use esp_analyze::{lint_program, report_json, FuncFacts, ProgramReport};
use esp_ir::ProgramAnalysis;
use esp_lang::CompilerConfig;

/// A corpus cross-section: both languages, loops, pointers, recursion.
const SUBSET: &[&str] = &["sort", "grep", "sed", "gzip", "li", "tomcatv"];

fn lint_subset() -> String {
    let cfg = CompilerConfig::default();
    let reports: Vec<ProgramReport> = esp_corpus::suite()
        .into_iter()
        .filter(|b| SUBSET.contains(&b.name))
        .map(|b| {
            let prog = b.compile(&cfg).expect("compiles");
            let analysis = ProgramAnalysis::analyze(&prog);
            ProgramReport {
                name: b.name.to_string(),
                findings: lint_program(&prog, &analysis),
            }
        })
        .collect();
    assert_eq!(reports.len(), SUBSET.len(), "subset names must all resolve");
    report_json(&reports)
}

#[test]
fn lint_reports_are_byte_identical_across_runs() {
    let a = lint_subset();
    let b = lint_subset();
    assert_eq!(a, b, "two lint runs over identical input diverged");
    assert!(!a.is_empty());
}

#[test]
fn findings_are_sorted_by_site() {
    let cfg = CompilerConfig::default();
    for b in esp_corpus::suite()
        .into_iter()
        .filter(|b| SUBSET.contains(&b.name))
    {
        let prog = b.compile(&cfg).expect("compiles");
        let analysis = ProgramAnalysis::analyze(&prog);
        let findings = lint_program(&prog, &analysis);
        let keys: Vec<_> = findings
            .iter()
            .map(|f| (f.func.0, f.block.0, f.insn.unwrap_or(usize::MAX), f.code))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "{}: findings not in site order", b.name);
    }
}

#[test]
fn func_facts_are_deterministic() {
    let cfg = CompilerConfig::default();
    for b in esp_corpus::suite()
        .into_iter()
        .filter(|b| SUBSET.contains(&b.name))
    {
        let prog = b.compile(&cfg).expect("compiles");
        for func in &prog.funcs {
            let a = FuncFacts::compute_standalone(func);
            let b2 = FuncFacts::compute_standalone(func);
            assert_eq!(a.reachable, b2.reachable);
            assert_eq!(a.branches, b2.branches);
            assert_eq!(
                a.dead.len(),
                b2.dead.len(),
                "{}/{}: dead-store sets diverged",
                prog.name,
                func.name
            );
        }
    }
}
