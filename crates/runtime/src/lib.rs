//! Std-only deterministic runtime shared by the whole workspace.
//!
//! Two small pieces, both free of external dependencies so the workspace
//! builds with zero registry access:
//!
//! * [`rng`] — a seeded [`Pcg32`] generator (seeded through SplitMix64) with
//!   the `seed_from_u64` / `gen_range` / `gen_bool` surface the corpus
//!   generators and the network initialiser need. Identical seeds produce
//!   identical streams on every platform.
//! * [`pool`] — a [`std::thread::scope`]-based worker pool for the
//!   embarrassingly-parallel layers of the ESP pipeline (profiling runs,
//!   cross-validation folds, training restarts, gradient chunks), plus an
//!   *ordered* pairwise tree reduction whose shape depends only on the item
//!   count — the building block that keeps parallel floating-point results
//!   bitwise identical to serial ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod rng;

pub use pool::{parallel_drain, parallel_map, parallel_map_indices, resolve_threads, tree_reduce};
pub use rng::{Pcg32, SplitMix64};
