//! Integration tests for the table/figure renderers on a fast corpus slice.

use esp_repro::eval::{self, SuiteData};
use esp_repro::lang::CompilerConfig;

fn small_suite() -> SuiteData {
    SuiteData::build_subset(&["sort", "grep", "tomcatv", "TIS"], &CompilerConfig::default())
}

#[test]
fn table3_reports_every_program() {
    let suite = small_suite();
    let rows = eval::table3::compute(&suite);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.insns_traced > 0, "{}", r.name);
        assert!(r.pct_cond_branches > 0.0 && r.pct_cond_branches < 0.5);
        assert!((0.0..=1.0).contains(&r.pct_taken));
        // quantiles are monotone
        for w in r.quantiles.windows(2) {
            assert!(w[0] <= w[1], "{}: quantiles not monotone {:?}", r.name, r.quantiles);
        }
        assert!(r.quantiles[5] <= r.static_sites);
    }
    let rendered = eval::table3(&suite);
    assert!(rendered.contains("tomcatv"));
    assert!(rendered.contains("Q-90"));
}

#[test]
fn table5_accounting_is_internally_consistent() {
    let suite = small_suite();
    for row in eval::table5::compute(&suite) {
        assert!((0.0..=1.0).contains(&row.loop_miss), "{row:?}");
        assert!((0.0..=1.0).contains(&row.pct_non_loop), "{row:?}");
        assert!((0.0..=1.0).contains(&row.coverage), "{row:?}");
        assert!((0.0..=1.0).contains(&row.overall), "{row:?}");
        // the overall rate interpolates the loop and non-loop rates
        let lo = row.loop_miss.min(row.nonloop_miss) - 1e-9;
        let hi = row.loop_miss.max(row.nonloop_miss) + 1e-9;
        assert!(
            row.overall >= lo && row.overall <= hi,
            "overall {} outside [{lo}, {hi}]: {row:?}",
            row.overall
        );
    }
    assert!(eval::table5(&suite).contains("Overall Avg"));
}

#[test]
fn table7_shows_compiler_sensitivity() {
    let rows = eval::table7::compute("sort", &CompilerConfig::table7_suite());
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!((0.0..=1.0).contains(&r.overall), "{r:?}");
        assert!(r.perfect <= r.overall + 1e-9, "{r:?}");
    }
    // GEM's unrolling must change the branch mix relative to the baseline.
    let base = &rows[0];
    let gem = rows.iter().find(|r| r.compiler == "gem").expect("gem row");
    assert!(
        (gem.pct_non_loop - base.pct_non_loop).abs() > 1e-6,
        "unrolling changed nothing: base {base:?} gem {gem:?}"
    );
}

#[test]
fn figures_render() {
    let f1 = eval::fig1(10);
    assert!(f1.contains("hidden layer"));
    assert!(f1.contains(&esp_repro::esp::ENCODED_DIM.to_string()));

    let suite = small_suite();
    let tomcatv = suite.by_name("tomcatv").expect("tomcatv");
    let f2 = eval::casestudy::fig2(tomcatv);
    assert!(f2.contains("executed"), "{f2}");
    assert!(f2.contains("APHC"), "{f2}");
}
