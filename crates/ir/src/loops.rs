//! Natural-loop analysis, following the definition Ball & Larus (and this
//! paper) use: a *back edge* is an edge `u → v` where `v` dominates `u`; the
//! natural loop of a header `v` is `v` plus every block that can reach a back
//! edge's tail without passing through `v`.

use std::collections::HashSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::program::BlockId;

/// One natural loop (back edges sharing a header are merged).
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header.
    pub header: BlockId,
    /// Membership bitset indexed by block.
    pub body: Vec<bool>,
    /// Tails of the back edges into `header`.
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to the loop body (headers are members).
    pub fn contains(&self, b: BlockId) -> bool {
        self.body[b.index()]
    }

    /// Number of blocks in the body.
    pub fn len(&self) -> usize {
        self.body.iter().filter(|m| **m).count()
    }

    /// Whether the loop body is empty (never true for well-formed loops).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Loop structure of one function.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    loops: Vec<Loop>,
    is_header: Vec<bool>,
    in_any_loop: Vec<bool>,
    back_edges: HashSet<(u32, u32)>,
    exit_edges: HashSet<(u32, u32)>,
    leads_to_header: Vec<bool>,
}

impl LoopInfo {
    /// Analyse the natural loops of `cfg` given its dominator tree.
    pub fn new(cfg: &Cfg, dom: &DomTree) -> Self {
        let n = cfg.num_blocks();

        // 1. Find back edges (only from blocks reachable from the entry).
        let mut back_edges: HashSet<(u32, u32)> = HashSet::new();
        for e in cfg.edges() {
            if cfg.is_reachable(e.from) && dom.dominates(e.to, e.from) {
                back_edges.insert((e.from.0, e.to.0));
            }
        }

        // 2. Natural loop bodies, merging back edges by header.
        let mut headers: Vec<BlockId> = back_edges
            .iter()
            .map(|&(_, h)| BlockId(h))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        headers.sort();

        let mut loops = Vec::with_capacity(headers.len());
        for header in headers {
            let mut body = vec![false; n];
            body[header.index()] = true;
            let mut latches = Vec::new();
            let mut stack = Vec::new();
            for &(u, h) in &back_edges {
                if h == header.0 {
                    latches.push(BlockId(u));
                    if !body[u as usize] {
                        body[u as usize] = true;
                        stack.push(BlockId(u));
                    }
                }
            }
            while let Some(b) = stack.pop() {
                for e in cfg.preds(b) {
                    if !body[e.from.index()] && cfg.is_reachable(e.from) {
                        body[e.from.index()] = true;
                        stack.push(e.from);
                    }
                }
            }
            latches.sort();
            loops.push(Loop {
                header,
                body,
                latches,
            });
        }

        // 3. Derived per-block and per-edge facts.
        let mut is_header = vec![false; n];
        let mut in_any_loop = vec![false; n];
        for l in &loops {
            is_header[l.header.index()] = true;
            for (i, m) in l.body.iter().enumerate() {
                if *m {
                    in_any_loop[i] = true;
                }
            }
        }

        let mut exit_edges: HashSet<(u32, u32)> = HashSet::new();
        for e in cfg.edges() {
            for l in &loops {
                if l.contains(e.from) && !l.contains(e.to) {
                    exit_edges.insert((e.from.0, e.to.0));
                }
            }
        }

        // 4. "Is a loop header or unconditionally passes control to one"
        //    (Table 2, feature 12): follow sole-successor chains with a cycle
        //    guard.
        let mut leads_to_header = vec![false; n];
        for (b, leads) in leads_to_header.iter_mut().enumerate() {
            let mut cur = BlockId(b as u32);
            let mut steps = 0usize;
            loop {
                if is_header[cur.index()] {
                    *leads = true;
                    break;
                }
                let succs = cfg.succs(cur);
                if succs.len() != 1 || steps > n {
                    break;
                }
                if succs[0].kind != crate::cfg::EdgeKind::Uncond {
                    break;
                }
                cur = succs[0].to;
                steps += 1;
            }
        }

        LoopInfo {
            loops,
            is_header,
            in_any_loop,
            back_edges,
            exit_edges,
            leads_to_header,
        }
    }

    /// The discovered loops, ordered by header block index.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Whether `b` is a natural-loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.is_header[b.index()]
    }

    /// Whether `b` belongs to the body of any loop.
    pub fn in_loop(&self, b: BlockId) -> bool {
        self.in_any_loop[b.index()]
    }

    /// Whether the edge `from → to` is a loop back edge.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.back_edges.contains(&(from.0, to.0))
    }

    /// Whether the edge `from → to` exits some loop (source inside the body,
    /// destination outside it).
    pub fn is_exit_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.exit_edges.contains(&(from.0, to.0))
    }

    /// Whether `b` is a loop header or unconditionally passes control to a
    /// loop header (Table 2, feature 12 / the Loop Header heuristic's
    /// pre-header case).
    pub fn leads_to_header(&self, b: BlockId) -> bool {
        self.leads_to_header[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::program::{Function, Lang};
    use crate::term::BranchOp;

    /// entry(0) -> pre(1) -> head(2); head -> body(3)|exit(4); body -> head
    fn loop_with_preheader() -> Function {
        let mut b = FunctionBuilder::new("l", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let pre = b.new_block();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.push_load_imm(e, c, 0);
        b.set_fallthrough(e, pre);
        b.set_jump(pre, head);
        b.set_cond_branch(head, BranchOp::Bne, c, None, body, exit);
        b.set_jump(body, head);
        b.set_return(exit, None);
        b.finish()
    }

    fn analyse(f: &Function) -> (Cfg, LoopInfo) {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(&cfg);
        let li = LoopInfo::new(&cfg, &dom);
        (cfg, li)
    }

    #[test]
    fn finds_single_loop() {
        let f = loop_with_preheader();
        let (_, li) = analyse(&f);
        assert_eq!(li.loops().len(), 1);
        let l = &li.loops()[0];
        assert_eq!(l.header, BlockId(2));
        assert!(l.contains(BlockId(2)));
        assert!(l.contains(BlockId(3)));
        assert!(!l.contains(BlockId(1)));
        assert_eq!(l.latches, vec![BlockId(3)]);
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
    }

    #[test]
    fn edge_classification() {
        let f = loop_with_preheader();
        let (_, li) = analyse(&f);
        assert!(li.is_back_edge(BlockId(3), BlockId(2)));
        assert!(!li.is_back_edge(BlockId(1), BlockId(2)));
        assert!(li.is_exit_edge(BlockId(2), BlockId(4)));
        assert!(!li.is_exit_edge(BlockId(2), BlockId(3)));
        assert!(li.is_header(BlockId(2)));
        assert!(li.in_loop(BlockId(3)));
        assert!(!li.in_loop(BlockId(4)));
    }

    #[test]
    fn preheader_leads_to_header() {
        let f = loop_with_preheader();
        let (_, li) = analyse(&f);
        assert!(li.leads_to_header(BlockId(2)), "header itself");
        assert!(li.leads_to_header(BlockId(1)), "direct pre-header");
        assert!(li.leads_to_header(BlockId(0)), "chain of unconditionals");
        assert!(!li.leads_to_header(BlockId(4)), "exit block");
    }

    #[test]
    fn nested_loops_share_blocks() {
        // entry(0)->oh(1); oh-> ih(2)|exit(5); ih-> ib(3)|olatch(4);
        // ib->ih; olatch->oh
        let mut b = FunctionBuilder::new("nest", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let oh = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let ol = b.new_block();
        let x = b.new_block();
        b.push_load_imm(e, c, 0);
        b.set_fallthrough(e, oh);
        b.set_cond_branch(oh, BranchOp::Bne, c, None, ih, x);
        b.set_cond_branch(ih, BranchOp::Beq, c, None, ib, ol);
        b.set_jump(ib, ih);
        b.set_jump(ol, oh);
        let f = {
            b.set_return(x, None);
            b.finish()
        };
        let (_, li) = analyse(&f);
        assert_eq!(li.loops().len(), 2);
        let outer = li.loops().iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = li.loops().iter().find(|l| l.header == BlockId(2)).unwrap();
        assert!(outer.contains(BlockId(2)) && outer.contains(BlockId(3)) && outer.contains(BlockId(4)));
        assert!(inner.contains(BlockId(3)));
        assert!(!inner.contains(BlockId(4)), "outer latch not in inner loop");
        assert!(li.is_back_edge(BlockId(4), BlockId(1)));
        assert!(li.is_back_edge(BlockId(3), BlockId(2)));
        // ih -> ol exits the inner loop while staying in the outer one.
        assert!(li.is_exit_edge(BlockId(2), BlockId(4)));
    }

    #[test]
    fn loopless_function_has_no_loops() {
        let mut b = FunctionBuilder::new("s", 0, Lang::C);
        let e = b.entry_block();
        b.set_return(e, None);
        let f = b.finish();
        let (_, li) = analyse(&f);
        assert!(li.loops().is_empty());
        assert!(!li.is_header(BlockId(0)));
        assert!(!li.in_loop(BlockId(0)));
    }
}
