//! The static-vs-dynamic headline table (`table_dyn`): how far the paper's
//! static schemes sit from cheap dynamic hardware prediction, and whether
//! the corpus-learned ESP prior still pays once hardware is in play.
//!
//! For every corpus program the dynamic conditional-branch outcome stream
//! is recorded (or loaded from a `--trace-dir` cache of `.esptrace` files)
//! and replayed through `esp-sim`'s predictor arena: the BTFNT and ESP
//! static schemes scored event-by-event, plus bimodal, gshare, cold TAGE
//! and the ESP-seeded TAGE hybrid whose base table starts from the trained
//! network's per-site taken-probabilities. ESP probabilities come from the
//! same leave-one-out language-group folds as Table 4 (and share its
//! `--save-model` / `--load-model` registry cache), so the static ESP
//! column here is the event-level counterpart of Table 4's.
//!
//! Besides whole-trace rates the report pools the first
//! [`TableDynConfig::warmup_events`] events of every program per language:
//! the warmup regime is where a cold TAGE pays allocation misses that a
//! seeded base table avoids, so the hybrid-vs-TAGE verdict is stated there.

use std::collections::HashMap;
use std::path::PathBuf;

use esp_core::{EspConfig, TrainingProgram};
use esp_corpus::Group;
use esp_exec::ExecLimits;
use esp_heur::{BranchCtx, Btfnt};
use esp_ir::Lang;
use esp_sim::{collect_trace, replay_arena, ArenaConfig, StaticScheme, Trace};

use crate::data::{BenchData, SuiteData};
use crate::fmt::{pct1, TextTable};
use crate::table4::{fold_model, ModelCache, Table4Config};

/// Options for the dynamic-arena study.
#[derive(Debug, Clone)]
pub struct TableDynConfig {
    /// ESP learner and feature options (fold training, as in Table 4).
    pub esp: EspConfig,
    /// Optional fold-model cache shared with Table 4
    /// (`--save-model` / `--load-model`).
    pub model_cache: Option<ModelCache>,
    /// Directory of cached `.esptrace` files (`--trace-dir`): traces are
    /// loaded when present and consistent with the current profile, and
    /// recorded + saved otherwise.
    pub trace_dir: Option<PathBuf>,
    /// Size of the per-program warmup window for the pooled
    /// hybrid-vs-TAGE comparison.
    pub warmup_events: u64,
}

impl Default for TableDynConfig {
    fn default() -> Self {
        TableDynConfig {
            esp: EspConfig::default(),
            model_cache: None,
            trace_dir: None,
            warmup_events: 2048,
        }
    }
}

/// One program's row: whole-trace miss rates per scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDynRow {
    /// Program name.
    pub name: String,
    /// Benchmark group.
    pub group: Group,
    /// Source language (drives the pools).
    pub lang: Lang,
    /// Dynamic conditional-branch events replayed.
    pub events: u64,
    /// BTFNT static scheme.
    pub btfnt: f64,
    /// ESP static scheme (leave-one-out fold, `> 0.5` threshold).
    pub esp: f64,
    /// Bimodal 2-bit counters.
    pub bimodal: f64,
    /// Gshare.
    pub gshare: f64,
    /// Cold TAGE.
    pub tage: f64,
    /// ESP-seeded TAGE hybrid.
    pub hybrid: f64,
    /// Cold-TAGE misses inside the warmup window.
    pub warmup_tage_misses: f64,
    /// Hybrid misses inside the warmup window.
    pub warmup_hybrid_misses: f64,
    /// Events actually counted as warmup (≤ `events`).
    pub warmup_events: u64,
}

/// Pooled (execution-weighted) miss rates for a set of programs.
#[derive(Debug, Clone, PartialEq)]
pub struct PooledRates {
    /// Pool label (`"C pool"`, `"Fortran pool"`, `"Overall pool"`).
    pub label: String,
    /// Events pooled.
    pub events: u64,
    /// `[btfnt, esp, bimodal, gshare, tage, hybrid]` pooled miss rates.
    pub rates: [f64; 6],
    /// Pooled warmup miss rate of cold TAGE.
    pub warmup_tage: f64,
    /// Pooled warmup miss rate of the ESP-seeded hybrid.
    pub warmup_hybrid: f64,
}

impl PooledRates {
    /// Does the ESP-seeded hybrid beat cold TAGE in this pool's warmup
    /// window?
    pub fn hybrid_wins_warmup(&self) -> bool {
        self.warmup_hybrid < self.warmup_tage
    }
}

/// The full study result: per-program rows plus language and overall pools.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDynReport {
    /// Per-program rows, in Table 3 order.
    pub rows: Vec<TableDynRow>,
    /// C pool, Fortran pool, overall pool (pools over executed events, not
    /// per-program averages — dynamic predictors are execution machines).
    pub pooled: Vec<PooledRates>,
    /// Warmup window size requested.
    pub warmup_events: u64,
}

/// Record or load the trace for one benchmark. A cached trace is used only
/// when its program name, site table and event count all match the current
/// compile and profile — anything else (different compiler configuration,
/// stale corpus) is re-recorded with corpus-standard limits.
fn bench_trace(b: &BenchData, cfg: &TableDynConfig) -> Trace {
    let limits = ExecLimits {
        max_insns: 80_000_000,
        ..ExecLimits::default()
    };
    let metrics = esp_obs::global_metrics();
    let expect_sites = b.prog.branch_sites();
    let path = cfg
        .trace_dir
        .as_ref()
        .map(|d| d.join(format!("{}.esptrace", b.bench.name)));
    if let Some(path) = &path {
        match Trace::load(path) {
            Ok(t) => {
                if t.program == b.bench.name
                    && t.sites == expect_sites
                    && t.events == b.profile.dyn_cond_branches
                {
                    metrics.counter("esp_sim_trace_cache_hits_total").inc();
                    return t;
                }
                eprintln!(
                    "  trace {}: cached trace is stale ({} events vs {} profiled); re-recording",
                    b.bench.name, t.events, b.profile.dyn_cond_branches
                );
            }
            Err(esp_sim::TraceError::Io(_)) => {} // plain cache miss
            Err(e) => eprintln!("  trace {}: unreadable cache ({e}); re-recording", b.bench.name),
        }
        metrics.counter("esp_sim_trace_cache_misses_total").inc();
    }
    let (trace, _) = collect_trace(&b.prog, &limits)
        .unwrap_or_else(|e| panic!("benchmark `{}` failed to trace: {e}", b.bench.name));
    if let Some(path) = &path {
        match trace.save(path) {
            Ok(()) => eprintln!("  trace {}: saved to {}", b.bench.name, path.display()),
            Err(e) => eprintln!("  trace {}: cannot save ({e})", b.bench.name),
        }
    }
    trace
}

/// Compute every row. Expensive: trains (or loads) one ESP fold per
/// program, then records/loads and replays every program's trace through
/// the arena.
pub fn compute(suite: &SuiteData, cfg: &TableDynConfig) -> TableDynReport {
    let _sp = esp_obs::span!("eval", "table_dyn", programs = suite.benches.len());

    // Per-bench ESP taken-probabilities from the Table 4 leave-one-out
    // folds. Benches in a language group too small to cross-validate keep
    // neutral 0.5 priors (ESP column scored uncovered, hybrid seeded cold).
    let t4cfg = Table4Config {
        esp: cfg.esp.clone(),
        model_cache: cfg.model_cache.clone(),
        quant: None,
    };
    let mut probs: Vec<Option<Vec<f64>>> = vec![None; suite.benches.len()];
    let training: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();
    for lang in [Lang::C, Lang::Fort] {
        let idx = suite.lang_indices(lang);
        if idx.len() < 2 {
            continue;
        }
        let group: Vec<TrainingProgram<'_>> = idx
            .iter()
            .map(|&i| TrainingProgram {
                prog: training[i].prog,
                analysis: training[i].analysis,
                profile: training[i].profile,
            })
            .collect();
        for (fold, &bench_i) in idx.iter().enumerate() {
            let b = &suite.benches[bench_i];
            let model = fold_model(suite, &t4cfg, lang, fold, &group);
            let sites = b.prog.branch_sites();
            probs[bench_i] = Some(model.predict_prob_sites(&b.prog, &b.analysis, &sites));
        }
    }

    let arena_cfg = ArenaConfig {
        warmup_events: cfg.warmup_events,
        ..ArenaConfig::default()
    };
    let rows: Vec<TableDynRow> = suite
        .benches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut sp = esp_obs::span!("eval", "table_dyn_bench", bench = b.bench.name);
            let trace = bench_trace(b, cfg);
            let sites = b.prog.branch_sites();
            let btfnt: Vec<Option<bool>> = sites
                .iter()
                .map(|&s| Some(Btfnt.predict(&BranchCtx::new(&b.prog, &b.analysis, s))))
                .collect();
            let esp: Vec<Option<bool>> = match &probs[i] {
                Some(p) => p.iter().map(|&x| Some(x > 0.5)).collect(),
                None => vec![None; sites.len()],
            };
            let neutral;
            let priors: &[f64] = match &probs[i] {
                Some(p) => p,
                None => {
                    neutral = vec![0.5; sites.len()];
                    &neutral
                }
            };
            let statics = [
                StaticScheme {
                    name: "BTFNT".into(),
                    preds: &btfnt,
                },
                StaticScheme {
                    name: "ESP".into(),
                    preds: &esp,
                },
            ];
            let r = replay_arena(&trace, &statics, Some(priors), &arena_cfg)
                .unwrap_or_else(|e| panic!("benchmark `{}` failed to replay: {e}", b.bench.name));
            let rate = |name: &str| r.miss_rate(name).unwrap_or(0.0);
            if sp.is_enabled() {
                sp.arg("events", r.events as f64);
            }
            TableDynRow {
                name: b.bench.name.to_string(),
                group: b.bench.group,
                lang: b.bench.lang,
                events: r.events,
                btfnt: rate("BTFNT"),
                esp: rate("ESP"),
                bimodal: rate("bimodal"),
                gshare: rate("gshare"),
                tage: rate("tage"),
                hybrid: rate("esp+tage"),
                warmup_tage_misses: r.scheme("tage").map_or(0.0, |s| s.warmup_misses),
                warmup_hybrid_misses: r.scheme("esp+tage").map_or(0.0, |s| s.warmup_misses),
                warmup_events: r.warmup_events,
            }
        })
        .collect();

    let pool = |label: &str, sel: &dyn Fn(&TableDynRow) -> bool| -> PooledRates {
        let picked: Vec<&TableDynRow> = rows.iter().filter(|r| sel(r)).collect();
        let events: u64 = picked.iter().map(|r| r.events).sum();
        let warm: u64 = picked.iter().map(|r| r.warmup_events).sum();
        let col = |f: &dyn Fn(&TableDynRow) -> f64| -> f64 {
            if events == 0 {
                return 0.0;
            }
            picked.iter().map(|r| f(r) * r.events as f64).sum::<f64>() / events as f64
        };
        let warm_rate = |f: &dyn Fn(&TableDynRow) -> f64| -> f64 {
            if warm == 0 {
                return 0.0;
            }
            picked.iter().map(|r| f(r)).sum::<f64>() / warm as f64
        };
        PooledRates {
            label: label.to_string(),
            events,
            rates: [
                col(&|r| r.btfnt),
                col(&|r| r.esp),
                col(&|r| r.bimodal),
                col(&|r| r.gshare),
                col(&|r| r.tage),
                col(&|r| r.hybrid),
            ],
            warmup_tage: warm_rate(&|r| r.warmup_tage_misses),
            warmup_hybrid: warm_rate(&|r| r.warmup_hybrid_misses),
        }
    };
    let pooled = vec![
        pool("C pool", &|r: &TableDynRow| r.lang == Lang::C),
        pool("Fortran pool", &|r: &TableDynRow| r.lang == Lang::Fort),
        pool("Overall pool", &|_| true),
    ];

    TableDynReport {
        rows,
        pooled,
        warmup_events: cfg.warmup_events,
    }
}

/// Render a computed report in the repo's text-table house style.
pub fn render_report(suite: &SuiteData, report: &TableDynReport) -> String {
    let mut t = TextTable::new(vec![
        "Program", "Events", "BTFNT", "ESP", "Bimodal", "Gshare", "TAGE", "ESP+TAGE",
    ]);
    for r in &report.rows {
        t.row(vec![
            r.name.clone(),
            r.events.to_string(),
            pct1(r.btfnt),
            pct1(r.esp),
            pct1(r.bimodal),
            pct1(r.gshare),
            pct1(r.tage),
            pct1(r.hybrid),
        ]);
    }
    t.separator();
    for p in &report.pooled {
        let mut row = vec![p.label.clone(), p.events.to_string()];
        row.extend(p.rates.iter().map(|&x| pct1(x)));
        t.row(row);
    }

    let mut out = format!(
        "Dyn table: static vs dynamic branch misprediction rates ({})\n\
         (statics event-scored on the same traces; pools weight by executed events)\n\n{}",
        suite.config.name,
        t.render()
    );
    out.push_str(&format!(
        "\nWarmup window (first {} events per program, pooled):\n",
        report.warmup_events
    ));
    for p in &report.pooled {
        if p.events == 0 {
            out.push_str(&format!("  {:<13} (no programs in pool)\n", p.label));
            continue;
        }
        let verdict = if p.hybrid_wins_warmup() {
            "ESP-seeded hybrid wins warmup"
        } else if p.warmup_hybrid == p.warmup_tage {
            "warmup tie"
        } else {
            "cold TAGE wins warmup"
        };
        out.push_str(&format!(
            "  {:<13} TAGE {:>7}   ESP+TAGE {:>7}   -> {verdict}\n",
            p.label,
            pct1(p.warmup_tage),
            pct1(p.warmup_hybrid),
        ));
    }
    out
}

/// Compute and render the dyn table in one call (the `repro_tables
/// --dynamic` entry point).
pub fn table_dyn(suite: &SuiteData, cfg: &TableDynConfig) -> String {
    let report = compute(suite, cfg);
    render_report(suite, &report)
}

/// Per-language pooled averages keyed for machine consumption (bench and
/// verify tooling).
pub fn pooled_map(report: &TableDynReport) -> HashMap<String, [f64; 6]> {
    report
        .pooled
        .iter()
        .map(|p| (p.label.clone(), p.rates))
        .collect()
}
