//! Benchmark crate: the std-only `bench_pipeline` harness that times the
//! serial vs parallel pipeline stages and emits `BENCH_pipeline.json`
//! (`src/bin/bench_pipeline.rs`), plus the `repro_tables` binary that
//! regenerates every table and figure of the paper
//! (`src/bin/repro_tables.rs`).
//!
//! The library itself only hosts small helpers shared by the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use esp_core::{EspConfig, Learner};
use esp_nnet::MlpConfig;

/// A reduced ESP configuration for benches: small network, few epochs, one
/// restart — fast enough to run repeatedly while exercising the full
/// pipeline.
pub fn bench_esp_config() -> EspConfig {
    EspConfig {
        learner: Learner::Net(MlpConfig {
            hidden: 6,
            max_epochs: 40,
            patience: 10,
            restarts: 1,
            ..MlpConfig::default()
        }),
        ..EspConfig::default()
    }
}
