//! The multi-model routing table: named, versioned models behind one
//! server, selected per-request by the protocol-v4 model selector.
//!
//! Every loaded model lives in a [`ModelEntry`] behind an `Arc`; the
//! reactor resolves a selector to an entry exactly once per request, and
//! every shard job of that request carries the same `Arc`. Hot reload is
//! therefore a single atomic pointer swap in the table: requests already
//! dispatched finish on the entry they resolved, new requests resolve the
//! fresh one, and nothing is ever torn mid-flight.
//!
//! Each entry also carries a table-unique `id`, which the shard caches
//! prefix onto every cache key. A reloaded version gets a fresh id, so a
//! stale probability can never be served across a swap — old entries
//! simply age out of the LRU.

use std::io::ErrorKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use esp_artifact::{AnyArtifact, FORMAT_VERSION};
use esp_core::EspModel;

use crate::protocol::ServerInfo;
use crate::server::Precision;

/// One loaded model: the inference network plus its routing identity.
pub(crate) struct ModelEntry {
    /// Table-unique load id; prefixes shard cache keys so entries from
    /// different loads (including reloads of the same name) never alias.
    pub id: u64,
    /// The inference model, at its serving precision.
    pub model: EspModel,
    /// The facts an INFO request reports for this entry.
    pub info: ServerInfo,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("id", &self.id)
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

/// Build the serving-precision model for an artifact, applying the same
/// precision matrix as the original single-model server: an f64 artifact
/// serves natively or quantizes down to f32; an f32 artifact cannot be
/// promoted back to f64.
pub(crate) fn model_at_precision(
    artifact: &AnyArtifact,
    precision: Option<Precision>,
) -> std::io::Result<EspModel> {
    match (artifact, precision) {
        (AnyArtifact::F64(a), Some(Precision::F32)) => Ok(a.quantize().to_model()),
        (AnyArtifact::F64(a), _) => Ok(a.to_model()),
        (AnyArtifact::F32(a), None | Some(Precision::F32)) => Ok(a.to_model()),
        (AnyArtifact::F32(_), Some(Precision::F64)) => Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "artifact holds f32 (quantized) weights and cannot be served at f64; \
             load the f64 artifact instead",
        )),
    }
}

/// The routing table: selector → [`ModelEntry`], plus the default entry an
/// empty selector resolves to. Reads are per-request `RwLock` read locks;
/// writes happen only at load and hot reload.
pub(crate) struct ModelTable {
    /// Name the empty selector resolves to (may itself be empty for a
    /// single anonymous model served from a bare file or synthesis).
    default_name: String,
    entries: RwLock<Vec<(String, Arc<ModelEntry>)>>,
    next_id: AtomicU64,
}

impl ModelTable {
    /// A table with one default entry (`default_name` may be empty for an
    /// anonymous model).
    pub fn new(default_name: &str) -> Self {
        ModelTable {
            default_name: default_name.to_string(),
            entries: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The name the empty selector resolves to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// Allocate the next load id (unique within this table's lifetime).
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Insert or replace the entry routed under `name`. Returns the
    /// replaced entry, if any.
    pub fn install(&self, name: &str, entry: Arc<ModelEntry>) -> Option<Arc<ModelEntry>> {
        let mut entries = self.entries.write().expect("model table lock");
        match entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => Some(std::mem::replace(slot, entry)),
            None => {
                entries.push((name.to_string(), entry));
                None
            }
        }
    }

    /// The entry the empty selector resolves to.
    pub fn default_entry(&self) -> Arc<ModelEntry> {
        self.resolve("").expect("default model present")
    }

    /// Every entry, in registration order (for health documents).
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        self.entries
            .read()
            .expect("model table lock")
            .iter()
            .map(|(_, e)| Arc::clone(e))
            .collect()
    }

    /// Resolve a protocol selector: `""` → the default model, `"name"` →
    /// the currently-loaded version of `name`, `"name@version"` → exactly
    /// that version or an error naming what *is* loaded.
    pub fn resolve(&self, selector: &str) -> Result<Arc<ModelEntry>, String> {
        let (name, version) = match selector.split_once('@') {
            Some((n, v)) => {
                let v: u32 = v.parse().map_err(|_| {
                    format!("model selector {selector:?}: version {v:?} is not a number")
                })?;
                (n, Some(v))
            }
            None => (selector, None),
        };
        let name = if name.is_empty() {
            self.default_name.as_str()
        } else {
            name
        };
        let entries = self.entries.read().expect("model table lock");
        let entry = entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| Arc::clone(e))
            .ok_or_else(|| {
                let known: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
                format!(
                    "no model named {name:?} (serving: {})",
                    if known.is_empty() {
                        "none".to_string()
                    } else {
                        known.join(", ")
                    }
                )
            })?;
        if let Some(v) = version {
            if entry.info.model_version != v {
                return Err(format!(
                    "model {name:?} is at version {}, not {v}",
                    entry.info.model_version
                ));
            }
        }
        Ok(entry)
    }
}

/// Build a [`ModelEntry`] from a loaded artifact.
pub(crate) fn entry_from_any(
    table: &ModelTable,
    artifact: &AnyArtifact,
    name: &str,
    version: u32,
    precision: Option<Precision>,
) -> std::io::Result<ModelEntry> {
    let model = model_at_precision(artifact, precision)?;
    Ok(ModelEntry {
        id: table.next_id(),
        model,
        info: ServerInfo {
            dim: artifact.dim() as u32,
            hidden: artifact.hidden() as u32,
            format_version: FORMAT_VERSION,
            corpus_id: artifact.meta().corpus_id.clone(),
            model_name: name.to_string(),
            model_version: version,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_artifact::ModelArtifact;

    fn table_with(names: &[(&str, u32)]) -> ModelTable {
        let table = ModelTable::new(names[0].0);
        for &(name, version) in names {
            let artifact = AnyArtifact::F64(ModelArtifact::synthetic(6, 3, version as u64));
            let entry = entry_from_any(&table, &artifact, name, version, None).unwrap();
            table.install(name, Arc::new(entry));
        }
        table
    }

    #[test]
    fn selectors_resolve_name_and_version() {
        let t = table_with(&[("alpha", 2), ("beta", 7)]);
        assert_eq!(t.resolve("").unwrap().info.model_name, "alpha");
        assert_eq!(t.resolve("beta").unwrap().info.model_version, 7);
        assert_eq!(t.resolve("beta@7").unwrap().info.model_name, "beta");
        let err = t.resolve("beta@6").unwrap_err();
        assert!(err.contains("version 7"), "got: {err}");
        let err = t.resolve("gamma").unwrap_err();
        assert!(err.contains("alpha") && err.contains("beta"), "got: {err}");
        let err = t.resolve("beta@x").unwrap_err();
        assert!(err.contains("not a number"), "got: {err}");
    }

    #[test]
    fn install_swaps_and_ids_are_unique() {
        let t = table_with(&[("alpha", 1)]);
        let old_id = t.resolve("alpha").unwrap().id;
        let artifact = AnyArtifact::F64(ModelArtifact::synthetic(6, 3, 99));
        let fresh = entry_from_any(&t, &artifact, "alpha", 2, None).unwrap();
        assert_ne!(fresh.id, old_id, "reload must mint a fresh cache epoch");
        let replaced = t.install("alpha", Arc::new(fresh));
        assert_eq!(replaced.unwrap().id, old_id);
        assert_eq!(t.resolve("alpha").unwrap().info.model_version, 2);
        assert_eq!(t.resolve("alpha@2").unwrap().id, t.default_entry().id);
    }

    #[test]
    fn f32_entries_refuse_f64_precision() {
        let t = ModelTable::new("q");
        let q = AnyArtifact::F32(ModelArtifact::synthetic(6, 3, 1).quantize());
        let err = entry_from_any(&t, &q, "q", 1, Some(Precision::F64)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        assert!(entry_from_any(&t, &q, "q", 1, None).is_ok());
    }
}
