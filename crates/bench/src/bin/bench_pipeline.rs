//! Std::time bench harness for the three parallel layers of the pipeline:
//! corpus profiling (one interpreter run per program), `Mlp::train`
//! (restarts × gradient chunks) and `cross_validate` (folds).
//!
//! For each stage it measures serial (`threads = 1`) against parallel
//! wall-clock, **checks the outputs are bitwise identical**, and appends the
//! result to `BENCH_pipeline.json` — the file the perf trajectory is tracked
//! in from PR to PR.
//!
//! The report also embeds a `"phases"` wall-clock summary (setup, encode,
//! and the parallel time of each stage) and a tracing-overhead probe: the
//! train stage is re-run with `esp-obs` span tracing enabled, the weights
//! are asserted bitwise identical to the untraced run
//! (`"tracing_identical"`), and the relative cost lands in
//! `"tracing_overhead_pct"`.
//!
//! A `"kernel"` block measures the flat-SoA training kernels directly: the
//! corpus coalescing shrink factor (`coalesce_ratio`), sustained training
//! throughput (`train_examples_per_sec`, epochs × examples over wall-clock),
//! heap traffic per epoch from a counting global allocator
//! (`train_allocs_per_epoch`), and a serial A/B of the fused kernel against
//! the preserved two-pass nested-`Vec` reference (`kernel_speedup`, with
//! `kernel_identical` asserting the two trainings produce bit-for-bit the
//! same weights — the run fails otherwise).
//!
//! ```text
//! bench_pipeline [--quick] [--threads N] [--out PATH]
//! ```
//!
//! `--quick` shrinks the learner and the fold count so the whole harness
//! finishes in seconds; `--threads 0` (default) uses every core.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use esp_core::{build_training_set, cross_validate, EspConfig, Learner, TrainingProgram};
use esp_eval::SuiteData;
use esp_exec::ExecLimits;
use esp_lang::CompilerConfig;
use esp_nnet::{reference::RefMlp, Mlp, MlpConfig};
use esp_runtime::resolve_threads;

/// Counts every heap allocation in the process, so the report can state how
/// much allocator traffic an epoch of training causes (the kernels are
/// zero-alloc once their scratch warms up; the per-epoch figure is the
/// residue — spans, harness bookkeeping — divided over all epochs).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct StageResult {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::INFINITY
        }
    }
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let threads = resolve_threads(
        flag("--threads")
            .map(|v| v.parse().expect("--threads takes a number"))
            .unwrap_or(0),
    );
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    eprintln!("compiling the corpus (shared setup)…");
    let (suite, setup_ms) = time_ms(|| SuiteData::build(&CompilerConfig::default()));
    let programs: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();

    // ---- stage 1: corpus profiling (one esp-exec run per program) --------
    eprintln!("stage 1/3: profiling {} programs…", suite.benches.len());
    let progs: Vec<&esp_ir::Program> = suite.benches.iter().map(|b| &b.prog).collect();
    let limits = ExecLimits {
        max_insns: 80_000_000,
        ..ExecLimits::default()
    };
    let (serial_out, profile_serial) = time_ms(|| esp_exec::run_many(&progs, &limits, 1));
    let (parallel_out, profile_parallel) = time_ms(|| esp_exec::run_many(&progs, &limits, threads));
    let profile_same = serial_out
        .iter()
        .zip(&parallel_out)
        .all(|(a, b)| match (a, b) {
            (Ok(x), Ok(y)) => {
                x.profile.dyn_insns == y.profile.dyn_insns
                    && x.profile.dyn_cond_branches == y.profile.dyn_cond_branches
                    && x.profile.iter().count() == y.profile.iter().count()
            }
            _ => false,
        });
    let profile_stage = StageResult {
        name: "profile",
        serial_ms: profile_serial,
        parallel_ms: profile_parallel,
        bitwise_identical: profile_same,
    };

    // ---- stage 2: Mlp::train (restarts × gradient chunks) ----------------
    let mlp_cfg = MlpConfig {
        hidden: 10,
        restarts: 4,
        max_epochs: if quick { 80 } else { 300 },
        patience: if quick { 80 } else { 300 },
        ..MlpConfig::default()
    };
    // Build the raw (uncoalesced) set, then coalesce explicitly so the
    // shrink factor is visible in the report; training runs on the merged
    // set, like every production path does by default.
    let esp_cfg = EspConfig {
        learner: Learner::Net(mlp_cfg.clone()),
        coalesce: false,
        ..EspConfig::default()
    };
    let ((_, raw_data), encode_ms) = time_ms(|| build_training_set(&programs, &esp_cfg));
    let (data, coalesce_stats) = esp_nnet::coalesce_examples(&raw_data);
    eprintln!(
        "stage 2/3: training on {} examples (coalesced from {}, ratio {:.3}; {} restarts)…",
        data.len(),
        coalesce_stats.examples_in,
        coalesce_stats.ratio(),
        mlp_cfg.restarts
    );
    let (m1, train_serial) = time_ms(|| {
        Mlp::train(
            &data,
            &MlpConfig {
                threads: 1,
                ..mlp_cfg.clone()
            },
        )
    });
    let epoch_counter = esp_obs::global_metrics().counter("esp_train_epochs_total");
    let epochs_before = epoch_counter.get();
    let allocs_before = allocations();
    let (mt, train_parallel) = time_ms(|| {
        Mlp::train(
            &data,
            &MlpConfig {
                threads,
                ..mlp_cfg.clone()
            },
        )
    });
    let epochs = (epoch_counter.get() - epochs_before).max(1);
    let train_allocs_per_epoch = (allocations() - allocs_before) as f64 / epochs as f64;
    let train_examples_per_sec = if train_parallel > 0.0 {
        epochs as f64 * data.len() as f64 / (train_parallel / 1e3)
    } else {
        f64::INFINITY
    };
    let train_same = weights_bits(&m1.0.flat_weights()) == weights_bits(&mt.0.flat_weights());
    let train_stage = StageResult {
        name: "train",
        serial_ms: train_serial,
        parallel_ms: train_parallel,
        bitwise_identical: train_same,
    };

    // ---- kernel A/B: fused flat kernel vs the two-pass reference ---------
    eprintln!("kernel A/B: serial fused kernel vs nested-Vec reference…");
    let (r1, ref_ms) = time_ms(|| {
        RefMlp::train(
            &data,
            &MlpConfig {
                threads: 1,
                ..mlp_cfg.clone()
            },
        )
    });
    let kernel_identical = r1.1 == m1.1
        && weights_bits(&r1.0.flat_weights()) == weights_bits(&m1.0.flat_weights());
    let kernel_speedup = if train_serial > 0.0 {
        ref_ms / train_serial
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  reference {ref_ms:.1} ms vs kernel {train_serial:.1} ms \
         ({kernel_speedup:.2}x), identical: {kernel_identical}"
    );

    // ---- tracing-overhead probe: the train stage with spans enabled ------
    eprintln!("tracing probe: re-running the train stage with spans enabled…");
    esp_obs::trace::enable();
    let (m_traced, train_traced_ms) = time_ms(|| {
        Mlp::train(
            &data,
            &MlpConfig {
                threads,
                ..mlp_cfg.clone()
            },
        )
    });
    esp_obs::trace::disable();
    let trace_events = esp_obs::trace::drain().len();
    let tracing_identical =
        weights_bits(&m_traced.0.flat_weights()) == weights_bits(&mt.0.flat_weights());
    let tracing_overhead_pct = if train_parallel > 0.0 {
        (train_traced_ms - train_parallel) / train_parallel * 100.0
    } else {
        0.0
    };
    eprintln!(
        "  tracing: {train_traced_ms:.1} ms vs {train_parallel:.1} ms untraced \
         ({tracing_overhead_pct:+.2}%), {trace_events} events, identical: {tracing_identical}"
    );

    // ---- stage 3: leave-one-out cross-validation (folds) -----------------
    let cv_pool: Vec<TrainingProgram<'_>> = if quick {
        programs.iter().take(8).map(|tp| TrainingProgram {
            prog: tp.prog,
            analysis: tp.analysis,
            profile: tp.profile,
        }).collect()
    } else {
        programs
    };
    let cv_mlp = MlpConfig {
        hidden: if quick { 6 } else { 10 },
        restarts: 1,
        max_epochs: if quick { 40 } else { 120 },
        patience: if quick { 40 } else { 25 },
        ..MlpConfig::default()
    };
    eprintln!("stage 3/3: cross-validating {} folds…", cv_pool.len());
    let (serial_models, cv_serial) = time_ms(|| {
        cross_validate(
            &cv_pool,
            &EspConfig {
                learner: Learner::Net(cv_mlp.clone()),
                threads: 1,
                ..EspConfig::default()
            },
        )
    });
    let (parallel_models, cv_parallel) = time_ms(|| {
        cross_validate(
            &cv_pool,
            &EspConfig {
                learner: Learner::Net(cv_mlp.clone()),
                threads,
                ..EspConfig::default()
            },
        )
    });
    let cv_same = serial_models.len() == parallel_models.len()
        && serial_models.iter().zip(&parallel_models).all(|(a, b)| {
            weights_bits(&a.net_weights().unwrap_or_default())
                == weights_bits(&b.net_weights().unwrap_or_default())
        });
    let cv_stage = StageResult {
        name: "crossval",
        serial_ms: cv_serial,
        parallel_ms: cv_parallel,
        bitwise_identical: cv_same,
    };

    // ---- report ----------------------------------------------------------
    let stages = [profile_stage, train_stage, cv_stage];
    for s in &stages {
        eprintln!(
            "  {:<9} serial {:>9.1} ms   threads={threads} {:>9.1} ms   speedup {:.2}x   identical: {}",
            s.name,
            s.serial_ms,
            s.parallel_ms,
            s.speedup(),
            s.bitwise_identical,
        );
    }
    let cores = resolve_threads(0);
    let phases = Phases {
        setup_ms,
        encode_ms,
        profile_ms: stages[0].parallel_ms,
        train_ms: stages[1].parallel_ms,
        crossval_ms: stages[2].parallel_ms,
    };
    let kernel = KernelReport {
        coalesce_ratio: coalesce_stats.ratio(),
        train_examples_per_sec,
        train_allocs_per_epoch,
        kernel_speedup,
        kernel_identical,
    };
    let json = render_json(
        &stages,
        &phases,
        &kernel,
        threads,
        cores,
        quick,
        tracing_overhead_pct,
        tracing_identical,
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");

    if stages.iter().any(|s| !s.bitwise_identical) {
        eprintln!("ERROR: a parallel stage diverged from the serial reference");
        std::process::exit(1);
    }
    if !tracing_identical {
        eprintln!("ERROR: enabling tracing changed the trained weights");
        std::process::exit(1);
    }
    if !kernel_identical {
        eprintln!("ERROR: the fused kernel diverged from the two-pass reference");
        std::process::exit(1);
    }
}

/// The `"kernel"` block of the report: coalescing, throughput, allocator
/// traffic and the reference A/B.
struct KernelReport {
    coalesce_ratio: f64,
    train_examples_per_sec: f64,
    train_allocs_per_epoch: f64,
    kernel_speedup: f64,
    kernel_identical: bool,
}

/// Wall-clock of each pipeline phase (parallel variant where both exist).
struct Phases {
    setup_ms: f64,
    encode_ms: f64,
    profile_ms: f64,
    train_ms: f64,
    crossval_ms: f64,
}

impl Phases {
    fn total_ms(&self) -> f64 {
        self.setup_ms + self.encode_ms + self.profile_ms + self.train_ms + self.crossval_ms
    }
}

fn weights_bits(w: &[f64]) -> Vec<u64> {
    w.iter().map(|x| x.to_bits()).collect()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    stages: &[StageResult],
    phases: &Phases,
    kernel: &KernelReport,
    threads: usize,
    cores: usize,
    quick: bool,
    tracing_overhead_pct: f64,
    tracing_identical: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"phases\": {\n");
    s.push_str(&format!("    \"setup_ms\": {:.3},\n", phases.setup_ms));
    s.push_str(&format!("    \"encode_ms\": {:.3},\n", phases.encode_ms));
    s.push_str(&format!("    \"profile_ms\": {:.3},\n", phases.profile_ms));
    s.push_str(&format!("    \"train_ms\": {:.3},\n", phases.train_ms));
    s.push_str(&format!("    \"crossval_ms\": {:.3},\n", phases.crossval_ms));
    s.push_str(&format!("    \"total_ms\": {:.3}\n", phases.total_ms()));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"tracing_overhead_pct\": {tracing_overhead_pct:.3},\n"
    ));
    s.push_str(&format!("  \"tracing_identical\": {tracing_identical},\n"));
    s.push_str("  \"kernel\": {\n");
    s.push_str(&format!(
        "    \"coalesce_ratio\": {:.4},\n",
        kernel.coalesce_ratio
    ));
    s.push_str(&format!(
        "    \"train_examples_per_sec\": {:.0},\n",
        kernel.train_examples_per_sec
    ));
    s.push_str(&format!(
        "    \"train_allocs_per_epoch\": {:.2},\n",
        kernel.train_allocs_per_epoch
    ));
    s.push_str(&format!(
        "    \"kernel_speedup\": {:.3},\n",
        kernel.kernel_speedup
    ));
    s.push_str(&format!(
        "    \"kernel_identical\": {}\n",
        kernel.kernel_identical
    ));
    s.push_str("  },\n");
    s.push_str("  \"stages\": [\n");
    for (i, st) in stages.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"bitwise_identical\": {}}}{}\n",
            st.name,
            st.serial_ms,
            st.parallel_ms,
            st.speedup(),
            st.bitwise_identical,
            if i + 1 < stages.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
