//! Baseline program-based branch predictors: BTFNT, the nine Ball–Larus
//! heuristics (Table 1), their fixed-order combination (APHC), the
//! Dempster–Shafer combination of Wu & Larus (DSHC), and the perfect static
//! profile predictor.
//!
//! All predictors answer, per static branch site, either `Some(taken?)` or
//! `None` ("not covered"). Following the paper's methodology (Table 5),
//! uncovered branches are scored as coin flips — an expected miss rate of
//! 50% — by the evaluation harness.
//!
//! # Example
//!
//! ```
//! use esp_heur::{Btfnt, Aphc, BranchCtx};
//! use esp_ir::{Lang, ProgramAnalysis};
//! use esp_lang::{compile_source, CompilerConfig};
//!
//! let prog = compile_source(
//!     "demo",
//!     "int main() { int i; int s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
//!     Lang::C,
//!     &CompilerConfig::default(),
//! ).unwrap();
//! let analysis = ProgramAnalysis::analyze(&prog);
//! let aphc = Aphc::table1_order();
//! for site in prog.branch_sites() {
//!     let ctx = BranchCtx::new(&prog, &analysis, site);
//!     let _maybe = aphc.predict(&ctx);       // Option<bool>
//!     let _always = Btfnt.predict(&ctx);     // bool — BTFNT covers everything
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balllarus;
mod combine;
mod ctx;
pub mod order;
mod perfect;
mod rates;

pub use balllarus::{Btfnt, Heuristic};
pub use combine::{Aphc, Dshc};
pub use ctx::BranchCtx;
pub use order::{evaluate_order, exhaustive_order, greedy_order};
pub use perfect::perfect_predict;
pub use rates::{measure_rates, HeuristicRates};
