//! Table 7: one program (the `espresso` analogue) compiled with four
//! different compilers — the paper's demonstration that heuristic accuracy
//! is compiler-dependent.

use esp_corpus::suite;
use esp_heur::perfect_predict;
use esp_lang::CompilerConfig;

use crate::data::BenchData;
use crate::fmt::{pct, TextTable};
use crate::miss::{miss_rate, Prediction};
use crate::table5;

/// One compiler's Table 7 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Compiler configuration name.
    pub compiler: String,
    /// Miss rate on loop branches.
    pub loop_miss: f64,
    /// Fraction of executed branches that are non-loop.
    pub pct_non_loop: f64,
    /// Heuristic coverage of non-loop executions.
    pub coverage: f64,
    /// Non-loop miss rate with the random default.
    pub nonloop_miss: f64,
    /// Overall APHC miss rate.
    pub overall: f64,
    /// Perfect static miss rate under this compiler.
    pub perfect: f64,
}

/// Run the study for `program` (defaults to `espresso` in [`table7`]).
pub fn compute(program: &str, configs: &[CompilerConfig]) -> Vec<Table7Row> {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == program)
        .unwrap_or_else(|| panic!("unknown benchmark `{program}`"));
    configs
        .iter()
        .map(|cfg| {
            let data = BenchData::build(&bench, cfg);
            let t5 = table5::compute_one(&data);
            let perfect = miss_rate(&data, |s| {
                Prediction::from(perfect_predict(&data.profile, s))
            });
            Table7Row {
                compiler: cfg.name.to_string(),
                loop_miss: t5.loop_miss,
                pct_non_loop: t5.pct_non_loop,
                coverage: t5.coverage,
                nonloop_miss: t5.nonloop_miss,
                overall: t5.overall,
                perfect,
            }
        })
        .collect()
}

/// Render Table 7 in the paper's layout for the `espresso` analogue under
/// the four Table 7 compiler configurations.
pub fn table7() -> String {
    let rows = compute("espresso", &CompilerConfig::table7_suite());
    let mut t = TextTable::new(vec![
        "Compiler",
        "Loop Miss",
        "%Non-Loop",
        "%Covered",
        "Non-Loop Miss",
        "Overall",
        "Perfect",
    ]);
    for r in &rows {
        t.row(vec![
            r.compiler.clone(),
            pct(r.loop_miss),
            pct(r.pct_non_loop),
            pct(r.coverage),
            pct(r.nonloop_miss),
            pct(r.overall),
            pct(r.perfect),
        ]);
    }
    format!(
        "Table 7: accuracy of prediction heuristics for `espresso` under different compilers\n\n{}",
        t.render()
    )
}
