//! Block terminators (control-transfer instructions).

use std::fmt;

use crate::program::{BlockId, FuncId, Reg};

/// Conditional-branch opcodes.
///
/// When the terminator carries a second register (`rt`), the branch compares
/// `rs` against `rt` (MIPS flavour); otherwise it compares `rs` against zero
/// (Alpha flavour). `Fb*` variants test a floating-point register against
/// zero (Alpha `FBxx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Ble,
    Bgt,
    Bge,
    Fbeq,
    Fbne,
    Fblt,
    Fble,
    Fbgt,
    Fbge,
}

impl BranchOp {
    /// All branch opcodes, in a fixed order suitable for one-hot encoding.
    pub const ALL: [BranchOp; 12] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Ble,
        BranchOp::Bgt,
        BranchOp::Bge,
        BranchOp::Fbeq,
        BranchOp::Fbne,
        BranchOp::Fblt,
        BranchOp::Fble,
        BranchOp::Fbgt,
        BranchOp::Fbge,
    ];

    /// A stable small integer for this opcode, usable as a one-hot index.
    pub fn ordinal(self) -> usize {
        BranchOp::ALL
            .iter()
            .position(|o| *o == self)
            .expect("branch opcode present in ALL")
    }

    /// Whether this opcode tests a floating-point register.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BranchOp::Fbeq
                | BranchOp::Fbne
                | BranchOp::Fblt
                | BranchOp::Fble
                | BranchOp::Fbgt
                | BranchOp::Fbge
        )
    }

    /// The opcode with the opposite condition (swaps taken/not-taken arms).
    pub fn negate(self) -> BranchOp {
        match self {
            BranchOp::Beq => BranchOp::Bne,
            BranchOp::Bne => BranchOp::Beq,
            BranchOp::Blt => BranchOp::Bge,
            BranchOp::Ble => BranchOp::Bgt,
            BranchOp::Bgt => BranchOp::Ble,
            BranchOp::Bge => BranchOp::Blt,
            BranchOp::Fbeq => BranchOp::Fbne,
            BranchOp::Fbne => BranchOp::Fbeq,
            BranchOp::Fblt => BranchOp::Fbge,
            BranchOp::Fble => BranchOp::Fbgt,
            BranchOp::Fbgt => BranchOp::Fble,
            BranchOp::Fbge => BranchOp::Fblt,
        }
    }
}

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Ble => "ble",
            BranchOp::Bgt => "bgt",
            BranchOp::Bge => "bge",
            BranchOp::Fbeq => "fbeq",
            BranchOp::Fbne => "fbne",
            BranchOp::Fblt => "fblt",
            BranchOp::Fble => "fble",
            BranchOp::Fbgt => "fbgt",
            BranchOp::Fbge => "fbge",
        };
        f.write_str(s)
    }
}

/// Kinds of control transfer ending a basic block.
///
/// The variants map onto the "branch type ending successor basic block"
/// feature values of Table 2 (FT, CBR, UBR, BSR, IJUMP, RETURN …); see
/// [`Terminator::kind`].
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Fall through to the next block with no explicit jump (FT).
    FallThrough {
        /// The next block in layout order.
        target: BlockId,
    },
    /// Unconditional jump (UBR).
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Two-way conditional branch (CBR).
    ///
    /// Taken when `rs <op> rt` holds (`rt = None` means compare against
    /// zero). The `not_taken` arm is the fall-through successor.
    CondBranch {
        /// Branch condition opcode.
        op: BranchOp,
        /// First compared register.
        rs: Reg,
        /// Second compared register; `None` on the Alpha flavour.
        rt: Option<Reg>,
        /// Successor when the condition holds.
        taken: BlockId,
        /// Fall-through successor when the condition does not hold.
        not_taken: BlockId,
    },
    /// Direct procedure call ending the block (BSR); control resumes at
    /// `next` after the callee returns.
    Call {
        /// The called procedure.
        callee: FuncId,
        /// Argument registers.
        args: Vec<Reg>,
        /// Register receiving the return value, if used.
        dst: Option<Reg>,
        /// Block executed after the call returns.
        next: BlockId,
    },
    /// Indirect multi-way jump through a table (IJUMP) — the lowering of
    /// `switch`. `index` selects `targets[index]`; out-of-range indices go to
    /// `default`.
    Switch {
        /// Selector register.
        index: Reg,
        /// Jump table.
        targets: Vec<BlockId>,
        /// Out-of-range target.
        default: BlockId,
    },
    /// Procedure return (RETURN).
    Return {
        /// Returned value, if any.
        value: Option<Reg>,
    },
}

/// The Table 2 categorical label for a terminator ("branch type ending
/// successor basic block").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TermKind {
    FallThrough,
    CondBranch,
    UncondBranch,
    CallSub,
    IndirectJump,
    Return,
}

impl TermKind {
    /// All terminator kinds, in a fixed order suitable for one-hot encoding.
    pub const ALL: [TermKind; 6] = [
        TermKind::FallThrough,
        TermKind::CondBranch,
        TermKind::UncondBranch,
        TermKind::CallSub,
        TermKind::IndirectJump,
        TermKind::Return,
    ];

    /// A stable small integer for this kind, usable as a one-hot index.
    pub fn ordinal(self) -> usize {
        TermKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("terminator kind present in ALL")
    }
}

impl fmt::Display for TermKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TermKind::FallThrough => "FT",
            TermKind::CondBranch => "CBR",
            TermKind::UncondBranch => "UBR",
            TermKind::CallSub => "BSR",
            TermKind::IndirectJump => "IJUMP",
            TermKind::Return => "RETURN",
        };
        f.write_str(s)
    }
}

impl Terminator {
    /// Successor blocks in edge order.
    ///
    /// For conditional branches the *taken* successor is listed first, then
    /// the fall-through; profilers and heuristics rely on this order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::FallThrough { target } | Terminator::Jump { target } => vec![*target],
            Terminator::CondBranch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Call { next, .. } => vec![*next],
            Terminator::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            Terminator::Return { .. } => vec![],
        }
    }

    /// The Table 2 categorical label of this terminator.
    pub fn kind(&self) -> TermKind {
        match self {
            Terminator::FallThrough { .. } => TermKind::FallThrough,
            Terminator::Jump { .. } => TermKind::UncondBranch,
            Terminator::CondBranch { .. } => TermKind::CondBranch,
            Terminator::Call { .. } => TermKind::CallSub,
            Terminator::Switch { .. } => TermKind::IndirectJump,
            Terminator::Return { .. } => TermKind::Return,
        }
    }

    /// Whether the terminator transfers control unconditionally to a single
    /// successor (used by the "unconditionally passes control to" closures in
    /// the Table 2 successor features).
    pub fn sole_successor(&self) -> Option<BlockId> {
        match self {
            Terminator::FallThrough { target } | Terminator::Jump { target } => Some(*target),
            _ => None,
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::FallThrough { .. } | Terminator::Jump { .. } => vec![],
            Terminator::CondBranch { rs, rt, .. } => match rt {
                Some(rt) => vec![*rs, *rt],
                None => vec![*rs],
            },
            Terminator::Call { args, .. } => args.clone(),
            Terminator::Switch { index, .. } => vec![*index],
            Terminator::Return { value } => value.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_order_taken_first() {
        let t = Terminator::CondBranch {
            op: BranchOp::Bne,
            rs: Reg(0),
            rt: None,
            taken: BlockId(5),
            not_taken: BlockId(1),
        };
        assert_eq!(t.successors(), vec![BlockId(5), BlockId(1)]);
        assert_eq!(t.kind(), TermKind::CondBranch);
        assert_eq!(t.sole_successor(), None);
    }

    #[test]
    fn branch_negate_is_involution() {
        for op in BranchOp::ALL {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.is_float(), op.negate().is_float());
        }
    }

    #[test]
    fn switch_successors_include_default_last() {
        let t = Terminator::Switch {
            index: Reg(0),
            targets: vec![BlockId(1), BlockId(2)],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(t.kind(), TermKind::IndirectJump);
    }

    #[test]
    fn kind_ordinals_are_dense() {
        for (i, k) in TermKind::ALL.iter().enumerate() {
            assert_eq!(k.ordinal(), i);
        }
    }

    #[test]
    fn return_has_no_successors() {
        let t = Terminator::Return { value: Some(Reg(0)) };
        assert!(t.successors().is_empty());
        assert_eq!(t.uses(), vec![Reg(0)]);
    }
}
