//! Std::time bench harness for the three parallel layers of the pipeline:
//! corpus profiling (one interpreter run per program), `Mlp::train`
//! (restarts × gradient chunks) and `cross_validate` (folds).
//!
//! For each stage it measures serial (`threads = 1`) against parallel
//! wall-clock, **checks the outputs are bitwise identical**, and appends the
//! result to `BENCH_pipeline.json` — the file the perf trajectory is tracked
//! in from PR to PR.
//!
//! The report also embeds a `"phases"` wall-clock summary (setup, encode,
//! and the parallel time of each stage) and a tracing-overhead probe: the
//! train stage is re-run with `esp-obs` span tracing enabled several times,
//! the weights are asserted bitwise identical to the untraced run
//! (`"tracing_identical"`), and the **median** relative cost lands in
//! `"tracing_overhead_pct"` (raw — it can dip slightly negative on a noisy
//! box; the printed summary clamps at 0).
//!
//! A `"kernel"` block measures the flat-SoA training kernels directly: the
//! corpus coalescing shrink factor (`coalesce_ratio`), sustained training
//! throughput (`train_examples_per_sec`, epochs × examples over wall-clock),
//! heap traffic per epoch from a counting global allocator
//! (`train_allocs_per_epoch`), and a serial A/B of the fused kernel against
//! the preserved two-pass nested-`Vec` reference (`kernel_speedup`, with
//! `kernel_identical` asserting the two trainings produce bit-for-bit the
//! same weights — the run fails otherwise). An inference-side A/B compares
//! the batch-major panel kernel against the per-example scalar path on the
//! real encoded corpus (`predict_rows_per_sec`, `batch_kernel_speedup`,
//! `batch_kernel_identical` — bitwise, the run fails otherwise) and the
//! f32 quantized model against its own scalar path
//! (`predict_rows_per_sec_f32`, `f32_kernel_identical`).
//!
//! A `"sim"` block exercises the trace-driven dynamic-predictor arena: a
//! fixed slice of the suite is traced (`sim_trace_record_ms`), then
//! replayed twice through bimodal + gshare + TAGE + the profile-seeded
//! TAGE hybrid. One replay's single-core throughput lands in
//! `sim_branches_per_sec` (event × predictor steps per second); the second
//! replay must produce bitwise-identical results (`sim_deterministic`, the
//! run fails otherwise — the sim has no clocks and no RNG by design).
//!
//! A `"ledger"` block measures the serving-path cost of the accuracy
//! ledger: two in-process `esp-serve` instances under identical
//! full-profile-replay load, ledger on vs off
//! (`ledger_rows_per_sec_on`/`_off`), with the relative gap in
//! `ledger_overhead_pct` (raw — noise can dip it negative) and the
//! enabled run's site count in `ledger_sites` (the run fails if zero).
//!
//! ```text
//! bench_pipeline [--quick] [--threads N] [--out PATH]
//! ```
//!
//! `--quick` shrinks the learner and the fold count so the whole harness
//! finishes in seconds; `--threads 0` (default) uses every core.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use esp_core::{build_training_set, cross_validate, EspConfig, Learner, TrainingProgram};
use esp_eval::SuiteData;
use esp_exec::ExecLimits;
use esp_lang::CompilerConfig;
use esp_nnet::{reference::RefMlp, Mlp, MlpConfig, PanelScratch, QuantizedMlp};
use esp_runtime::resolve_threads;

/// Counts every heap allocation in the process, so the report can state how
/// much allocator traffic an epoch of training causes (the kernels are
/// zero-alloc once their scratch warms up; the per-epoch figure is the
/// residue — spans, harness bookkeeping — divided over all epochs).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct StageResult {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::INFINITY
        }
    }
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let threads = resolve_threads(
        flag("--threads")
            .map(|v| v.parse().expect("--threads takes a number"))
            .unwrap_or(0),
    );
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    eprintln!("compiling the corpus (shared setup)…");
    let (suite, setup_ms) = time_ms(|| SuiteData::build(&CompilerConfig::default()));
    let programs: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();

    // ---- stage 1: corpus profiling (one esp-exec run per program) --------
    eprintln!("stage 1/3: profiling {} programs…", suite.benches.len());
    let progs: Vec<&esp_ir::Program> = suite.benches.iter().map(|b| &b.prog).collect();
    let limits = ExecLimits {
        max_insns: 80_000_000,
        ..ExecLimits::default()
    };
    let (serial_out, profile_serial) = time_ms(|| esp_exec::run_many(&progs, &limits, 1));
    let (parallel_out, profile_parallel) = time_ms(|| esp_exec::run_many(&progs, &limits, threads));
    let profile_same = serial_out
        .iter()
        .zip(&parallel_out)
        .all(|(a, b)| match (a, b) {
            (Ok(x), Ok(y)) => {
                x.profile.dyn_insns == y.profile.dyn_insns
                    && x.profile.dyn_cond_branches == y.profile.dyn_cond_branches
                    && x.profile.iter().count() == y.profile.iter().count()
            }
            _ => false,
        });
    let profile_stage = StageResult {
        name: "profile",
        serial_ms: profile_serial,
        parallel_ms: profile_parallel,
        bitwise_identical: profile_same,
    };

    // ---- stage 2: Mlp::train (restarts × gradient chunks) ----------------
    let mlp_cfg = MlpConfig {
        hidden: 10,
        restarts: 4,
        max_epochs: if quick { 80 } else { 300 },
        patience: if quick { 80 } else { 300 },
        ..MlpConfig::default()
    };
    // Build the raw (uncoalesced) set, then coalesce explicitly so the
    // shrink factor is visible in the report; training runs on the merged
    // set, like every production path does by default.
    let esp_cfg = EspConfig {
        learner: Learner::Net(mlp_cfg.clone()),
        coalesce: false,
        ..EspConfig::default()
    };
    let ((_, raw_data), encode_ms) = time_ms(|| build_training_set(&programs, &esp_cfg));
    let (data, coalesce_stats) = esp_nnet::coalesce_examples(&raw_data);
    eprintln!(
        "stage 2/3: training on {} examples (coalesced from {}, ratio {:.3}; {} restarts)…",
        data.len(),
        coalesce_stats.examples_in,
        coalesce_stats.ratio(),
        mlp_cfg.restarts
    );
    let (m1, train_serial) = time_ms(|| {
        Mlp::train(
            &data,
            &MlpConfig {
                threads: 1,
                ..mlp_cfg.clone()
            },
        )
    });
    let epoch_counter = esp_obs::global_metrics().counter("esp_train_epochs_total");
    let epochs_before = epoch_counter.get();
    let allocs_before = allocations();
    let (mt, train_parallel) = time_ms(|| {
        Mlp::train(
            &data,
            &MlpConfig {
                threads,
                ..mlp_cfg.clone()
            },
        )
    });
    let epochs = (epoch_counter.get() - epochs_before).max(1);
    let train_allocs_per_epoch = (allocations() - allocs_before) as f64 / epochs as f64;
    let train_examples_per_sec = if train_parallel > 0.0 {
        epochs as f64 * data.len() as f64 / (train_parallel / 1e3)
    } else {
        f64::INFINITY
    };
    let train_same = weights_bits(&m1.0.flat_weights()) == weights_bits(&mt.0.flat_weights());
    let train_stage = StageResult {
        name: "train",
        serial_ms: train_serial,
        parallel_ms: train_parallel,
        bitwise_identical: train_same,
    };

    // ---- kernel A/B: fused flat kernel vs the two-pass reference ---------
    eprintln!("kernel A/B: serial fused kernel vs nested-Vec reference…");
    let (r1, ref_ms) = time_ms(|| {
        RefMlp::train(
            &data,
            &MlpConfig {
                threads: 1,
                ..mlp_cfg.clone()
            },
        )
    });
    let kernel_identical = r1.1 == m1.1
        && weights_bits(&r1.0.flat_weights()) == weights_bits(&m1.0.flat_weights());
    let kernel_speedup = if train_serial > 0.0 {
        ref_ms / train_serial
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  reference {ref_ms:.1} ms vs kernel {train_serial:.1} ms \
         ({kernel_speedup:.2}x), identical: {kernel_identical}"
    );

    // ---- tracing-overhead probe: the train stage with spans enabled ------
    // The overhead of one traced run against one untraced run is noise-bound
    // on this scale (it regularly came out negative); run the traced stage
    // several times and report the MEDIAN relative overhead. The raw median
    // (which can still be slightly negative on a noisy box) goes into the
    // JSON; the human summary clamps at 0.
    const TRACE_REPS: usize = 3;
    eprintln!("tracing probe: re-running the train stage with spans enabled ({TRACE_REPS} reps)…");
    let mut trace_events = 0usize;
    let mut tracing_identical = true;
    let mut overhead_pcts: Vec<f64> = Vec::with_capacity(TRACE_REPS);
    for _ in 0..TRACE_REPS {
        esp_obs::trace::enable();
        let (m_traced, train_traced_ms) = time_ms(|| {
            Mlp::train(
                &data,
                &MlpConfig {
                    threads,
                    ..mlp_cfg.clone()
                },
            )
        });
        esp_obs::trace::disable();
        trace_events += esp_obs::trace::drain().len();
        tracing_identical = tracing_identical
            && weights_bits(&m_traced.0.flat_weights()) == weights_bits(&mt.0.flat_weights());
        if train_parallel > 0.0 {
            overhead_pcts.push((train_traced_ms - train_parallel) / train_parallel * 100.0);
        }
    }
    let tracing_overhead_pct = median(&mut overhead_pcts);
    eprintln!(
        "  tracing: median overhead {:+.2}% over {TRACE_REPS} reps vs {train_parallel:.1} ms \
         untraced (reported as {:.2}%), {trace_events} events, identical: {tracing_identical}",
        tracing_overhead_pct,
        tracing_overhead_pct.max(0.0)
    );

    // ---- predict kernel A/B: batch-major panel kernel vs per-example -----
    // Same trained f64 model, same rows (the real encoded corpus), two
    // inference paths: the per-example scalar loop and the batch-major
    // panel kernel. The panel kernel must be bitwise identical — it
    // performs the scalar summation order per lane — so the A/B doubles as
    // the identity gate. The f32 quantized model runs the same comparison
    // against its own scalar path (f32 is a different model, so it is only
    // self-consistent, never f64-identical).
    let predict_reps = if quick { 20 } else { 60 };
    eprintln!(
        "predict A/B: {} rows x {predict_reps} reps, scalar vs panel kernel…",
        raw_data.len()
    );
    let net = &m1.0;
    let inputs = net.num_inputs();
    let mut panel: Vec<f64> = Vec::with_capacity(raw_data.len() * inputs);
    for ex in &raw_data {
        panel.extend_from_slice(&ex.x);
    }
    let rows_n = raw_data.len();
    let mut h64: Vec<f64> = Vec::new();
    let mut scalar_out: Vec<f64> = Vec::with_capacity(rows_n);
    let (_, scalar_ms) = time_ms(|| {
        for _ in 0..predict_reps {
            scalar_out.clear();
            for ex in &raw_data {
                scalar_out.push(net.predict_with_scratch(&ex.x, &mut h64));
            }
        }
    });
    let mut scratch64 = PanelScratch::new();
    let mut panel_out: Vec<f64> = Vec::with_capacity(rows_n);
    let (_, panel_ms) = time_ms(|| {
        for _ in 0..predict_reps {
            panel_out.clear();
            net.predict_panel_into(&panel, rows_n, &mut scratch64, &mut panel_out);
        }
    });
    let batch_kernel_identical = weights_bits(&scalar_out) == weights_bits(&panel_out);
    let batch_kernel_speedup = if panel_ms > 0.0 {
        scalar_ms / panel_ms
    } else {
        f64::INFINITY
    };
    let predict_rows_per_sec = if panel_ms > 0.0 {
        (rows_n * predict_reps) as f64 / (panel_ms / 1e3)
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  f64: scalar {scalar_ms:.1} ms vs panel {panel_ms:.1} ms \
         ({batch_kernel_speedup:.2}x, {predict_rows_per_sec:.0} rows/s), \
         identical: {batch_kernel_identical}"
    );

    let qnet = QuantizedMlp::from_mlp(net);
    let mut h32: Vec<f32> = Vec::new();
    let mut scalar32_out: Vec<f64> = Vec::with_capacity(rows_n);
    let (_, scalar32_ms) = time_ms(|| {
        for _ in 0..predict_reps {
            scalar32_out.clear();
            for ex in &raw_data {
                scalar32_out.push(qnet.predict_with_scratch(&ex.x, &mut h32));
            }
        }
    });
    let mut scratch32 = PanelScratch::<f32>::new();
    let mut panel32_out: Vec<f64> = Vec::with_capacity(rows_n);
    let (_, panel32_ms) = time_ms(|| {
        for _ in 0..predict_reps {
            panel32_out.clear();
            qnet.predict_panel_into(&panel, rows_n, &mut scratch32, &mut panel32_out);
        }
    });
    let f32_kernel_identical = weights_bits(&scalar32_out) == weights_bits(&panel32_out);
    let predict_rows_per_sec_f32 = if panel32_ms > 0.0 {
        (rows_n * predict_reps) as f64 / (panel32_ms / 1e3)
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  f32: scalar {scalar32_ms:.1} ms vs panel {panel32_ms:.1} ms \
         ({predict_rows_per_sec_f32:.0} rows/s), self-consistent: {f32_kernel_identical}"
    );

    // ---- sim: trace-driven dynamic-predictor arena -----------------------
    // Record the outcome streams of a fixed slice of the suite, then replay
    // them twice through the full arena (bimodal + gshare + TAGE + the
    // profile-seeded TAGE hybrid). The second replay is the determinism
    // A/B: the sim has no clocks and no RNG, so the two results must be
    // bitwise equal or the run fails. Throughput is single-core
    // event × predictor steps per second of one replay.
    let sim_take = if quick { 3 } else { 8 };
    let sim_benches: Vec<&esp_eval::BenchData> = suite.benches.iter().take(sim_take).collect();
    eprintln!(
        "sim: tracing {} programs, replaying the predictor arena (A/B)…",
        sim_benches.len()
    );
    let (traces, sim_trace_record_ms) = time_ms(|| {
        sim_benches
            .iter()
            .map(|b| {
                esp_sim::collect_trace(&b.prog, &limits)
                    .expect("corpus program runs")
                    .0
            })
            .collect::<Vec<_>>()
    });
    // Seed the hybrid from the profile's own per-site frequencies — the
    // bench measures the machinery, not fold training.
    let sim_priors: Vec<Vec<f64>> = sim_benches
        .iter()
        .map(|b| {
            b.prog
                .branch_sites()
                .iter()
                .map(|&s| {
                    b.profile
                        .counts(s)
                        .and_then(|c| c.taken_prob())
                        .unwrap_or(0.5)
                })
                .collect()
        })
        .collect();
    let arena_cfg = esp_sim::ArenaConfig::default();
    let replay_all = || -> Vec<esp_sim::ArenaResult> {
        traces
            .iter()
            .zip(&sim_priors)
            .map(|(t, p)| esp_sim::replay_arena(t, &[], Some(p), &arena_cfg).expect("replay"))
            .collect()
    };
    let (sim_a, sim_replay_ms) = time_ms(replay_all);
    let (sim_b, _) = time_ms(replay_all);
    let sim_deterministic = sim_a == sim_b;
    let sim_events_total: u64 = sim_a.iter().map(|r| r.events).sum();
    const SIM_PREDICTORS: u64 = 4; // bimodal, gshare, tage, esp+tage
    let sim_branches_per_sec = if sim_replay_ms > 0.0 {
        (sim_events_total * SIM_PREDICTORS) as f64 / (sim_replay_ms / 1e3)
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  sim: {sim_events_total} events x {SIM_PREDICTORS} predictors in {sim_replay_ms:.1} ms \
         ({sim_branches_per_sec:.0} branch-predictions/s), deterministic: {sim_deterministic}"
    );
    let sim = SimReport {
        programs: sim_benches.len(),
        events_total: sim_events_total,
        trace_record_ms: sim_trace_record_ms,
        replay_ms: sim_replay_ms,
        branches_per_sec: sim_branches_per_sec,
        deterministic: sim_deterministic,
    };

    // ---- analyze: the corpus linter's dataflow pass (A/B) ----------------
    // Run the full `esp-analyze` lint (SCCP + intervals + liveness + fact
    // distillation) over every suite program twice. The second run's JSON
    // report must be byte-identical — the analyses iterate in deterministic
    // RPO order by construction, and this A/B pins it at the system level.
    // Throughput is conditional-branch sites analyzed per second of one run.
    eprintln!(
        "analyze: linting {} programs twice (determinism A/B)…",
        suite.benches.len()
    );
    let lint_all = || -> String {
        let reports: Vec<esp_analyze::ProgramReport> = suite
            .benches
            .iter()
            .map(|b| esp_analyze::ProgramReport {
                name: b.bench.name.to_string(),
                findings: esp_analyze::lint_program(&b.prog, &b.analysis),
            })
            .collect();
        esp_analyze::report_json(&reports)
    };
    let (lint_a, analyze_ms) = time_ms(lint_all);
    let (lint_b, _) = time_ms(lint_all);
    let analyze_deterministic = lint_a == lint_b;
    let analyze_branches_total: usize = suite
        .benches
        .iter()
        .map(|b| b.prog.branch_sites().len())
        .sum();
    let lint_findings_total = lint_a.matches("\"code\":").count();
    let analyze_branches_per_sec = if analyze_ms > 0.0 {
        analyze_branches_total as f64 / (analyze_ms / 1e3)
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  analyze: {analyze_branches_total} branches, {lint_findings_total} findings \
         in {analyze_ms:.1} ms ({analyze_branches_per_sec:.0} branches/s), \
         deterministic: {analyze_deterministic}"
    );
    let analyze = AnalyzeReport {
        branches_total: analyze_branches_total,
        findings_total: lint_findings_total,
        analyze_ms,
        branches_per_sec: analyze_branches_per_sec,
        deterministic: analyze_deterministic,
    };

    // ---- ledger-overhead probe: serving A/B with the accuracy loop -------
    // Two in-process servers over the same synthetic artifact, identical
    // deterministic load with every predicted row profiled back
    // (`profile_rate = 1`): one with the accuracy ledger on, one with it
    // off (PROFILE frames still arrive and are dropped at the
    // one-atomic-load gate — the end-to-end cost of "disabled" includes
    // the wire traffic). Median rows/sec of each over a few reps; the
    // relative gap is the ledger's serving-path overhead. Raw in the JSON
    // (noise can push it slightly negative), clamped in the summary.
    const LEDGER_REPS: usize = 3;
    eprintln!("ledger probe: serve A/B with profile replay, ledger on vs off ({LEDGER_REPS} reps)…");
    let ledger_artifact = esp_artifact::ModelArtifact::synthetic(30, 10, 42);
    let ledger_load = esp_serve::LoadGenConfig {
        requests: if quick { 40 } else { 120 },
        batch: 32,
        keys: 512,
        seed: 0x1ED6E4,
        profile_rate: 1.0,
        ..esp_serve::LoadGenConfig::default()
    };
    let mut ledger_rows = [0.0f64; 2]; // [on, off]
    let mut ledger_sites = 0u64;
    for (slot, enabled) in [(0usize, true), (1usize, false)] {
        let mut rates: Vec<f64> = Vec::with_capacity(LEDGER_REPS);
        for _ in 0..LEDGER_REPS {
            let scfg = esp_serve::ServeConfig {
                ledger: enabled,
                shards: 1,
                ..esp_serve::ServeConfig::default()
            };
            let handle = esp_serve::serve(&ledger_artifact, "127.0.0.1:0", &scfg)
                .expect("ledger probe server");
            let report =
                esp_serve::loadgen::run(&handle.addr().to_string(), 30, &ledger_load)
                    .expect("ledger probe run");
            rates.push(report.predictions_per_sec);
            if enabled {
                ledger_sites = esp_serve::loadgen::gauge_value(
                    &report.server.exposition,
                    "esp_ledger_sites",
                )
                .unwrap_or(0.0) as u64;
            }
            handle.shutdown();
        }
        ledger_rows[slot] = median(&mut rates);
    }
    let ledger_overhead_pct = if ledger_rows[0] > 0.0 {
        (ledger_rows[1] / ledger_rows[0] - 1.0) * 100.0
    } else {
        0.0
    };
    eprintln!(
        "  ledger: on {:.0} rows/s vs off {:.0} rows/s — overhead {:+.2}% \
         (reported as {:.2}%), {ledger_sites} sites",
        ledger_rows[0],
        ledger_rows[1],
        ledger_overhead_pct,
        ledger_overhead_pct.max(0.0)
    );
    if ledger_sites == 0 {
        eprintln!("ERROR: the enabled-ledger probe recorded no sites");
        std::process::exit(1);
    }
    let ledger = LedgerReport {
        rows_per_sec_on: ledger_rows[0],
        rows_per_sec_off: ledger_rows[1],
        overhead_pct: ledger_overhead_pct,
        sites: ledger_sites,
    };

    // ---- stage 3: leave-one-out cross-validation (folds) -----------------
    let cv_pool: Vec<TrainingProgram<'_>> = if quick {
        programs.iter().take(8).map(|tp| TrainingProgram {
            prog: tp.prog,
            analysis: tp.analysis,
            profile: tp.profile,
        }).collect()
    } else {
        programs
    };
    let cv_mlp = MlpConfig {
        hidden: if quick { 6 } else { 10 },
        restarts: 1,
        max_epochs: if quick { 40 } else { 120 },
        patience: if quick { 40 } else { 25 },
        ..MlpConfig::default()
    };
    eprintln!("stage 3/3: cross-validating {} folds…", cv_pool.len());
    let (serial_models, cv_serial) = time_ms(|| {
        cross_validate(
            &cv_pool,
            &EspConfig {
                learner: Learner::Net(cv_mlp.clone()),
                threads: 1,
                ..EspConfig::default()
            },
        )
    });
    let (parallel_models, cv_parallel) = time_ms(|| {
        cross_validate(
            &cv_pool,
            &EspConfig {
                learner: Learner::Net(cv_mlp.clone()),
                threads,
                ..EspConfig::default()
            },
        )
    });
    let cv_same = serial_models.len() == parallel_models.len()
        && serial_models.iter().zip(&parallel_models).all(|(a, b)| {
            weights_bits(&a.net_weights().unwrap_or_default())
                == weights_bits(&b.net_weights().unwrap_or_default())
        });
    let cv_stage = StageResult {
        name: "crossval",
        serial_ms: cv_serial,
        parallel_ms: cv_parallel,
        bitwise_identical: cv_same,
    };

    // ---- report ----------------------------------------------------------
    let stages = [profile_stage, train_stage, cv_stage];
    for s in &stages {
        eprintln!(
            "  {:<9} serial {:>9.1} ms   threads={threads} {:>9.1} ms   speedup {:.2}x   identical: {}",
            s.name,
            s.serial_ms,
            s.parallel_ms,
            s.speedup(),
            s.bitwise_identical,
        );
    }
    let cores = resolve_threads(0);
    let phases = Phases {
        setup_ms,
        encode_ms,
        profile_ms: stages[0].parallel_ms,
        train_ms: stages[1].parallel_ms,
        crossval_ms: stages[2].parallel_ms,
    };
    let kernel = KernelReport {
        coalesce_ratio: coalesce_stats.ratio(),
        train_examples_per_sec,
        train_allocs_per_epoch,
        kernel_speedup,
        kernel_identical,
        predict_rows_per_sec,
        predict_rows_per_sec_f32,
        batch_kernel_speedup,
        batch_kernel_identical,
        f32_kernel_identical,
    };
    let json = render_json(
        &stages,
        &phases,
        &kernel,
        &sim,
        &analyze,
        &ledger,
        threads,
        cores,
        quick,
        tracing_overhead_pct,
        tracing_identical,
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");

    if stages.iter().any(|s| !s.bitwise_identical) {
        eprintln!("ERROR: a parallel stage diverged from the serial reference");
        std::process::exit(1);
    }
    if !tracing_identical {
        eprintln!("ERROR: enabling tracing changed the trained weights");
        std::process::exit(1);
    }
    if !kernel_identical {
        eprintln!("ERROR: the fused kernel diverged from the two-pass reference");
        std::process::exit(1);
    }
    if !batch_kernel_identical {
        eprintln!("ERROR: the batch panel kernel diverged from the scalar f64 path");
        std::process::exit(1);
    }
    if !f32_kernel_identical {
        eprintln!("ERROR: the f32 panel kernel diverged from the f32 scalar path");
        std::process::exit(1);
    }
    if !sim_deterministic {
        eprintln!("ERROR: two identical arena replays diverged — the sim is not deterministic");
        std::process::exit(1);
    }
    if !analyze_deterministic {
        eprintln!("ERROR: two identical lint runs produced different reports");
        std::process::exit(1);
    }
}

/// Median of a small sample (averages the middle pair for even sizes);
/// `0.0` for an empty slice.
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN overhead"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// The `"kernel"` block of the report: coalescing, throughput, allocator
/// traffic and the reference A/B.
struct KernelReport {
    coalesce_ratio: f64,
    train_examples_per_sec: f64,
    train_allocs_per_epoch: f64,
    kernel_speedup: f64,
    kernel_identical: bool,
    predict_rows_per_sec: f64,
    predict_rows_per_sec_f32: f64,
    batch_kernel_speedup: f64,
    batch_kernel_identical: bool,
    f32_kernel_identical: bool,
}

/// The `"sim"` block of the report: the trace-driven predictor arena's
/// throughput and its determinism A/B.
struct SimReport {
    programs: usize,
    events_total: u64,
    trace_record_ms: f64,
    replay_ms: f64,
    branches_per_sec: f64,
    deterministic: bool,
}

/// The `"analyze"` block of the report: the corpus linter's dataflow-pass
/// throughput and its determinism A/B.
struct AnalyzeReport {
    branches_total: usize,
    findings_total: usize,
    analyze_ms: f64,
    branches_per_sec: f64,
    deterministic: bool,
}

/// The `"ledger"` block of the report: served rows/sec with the accuracy
/// ledger on vs off under full profile replay, and the relative overhead.
struct LedgerReport {
    rows_per_sec_on: f64,
    rows_per_sec_off: f64,
    overhead_pct: f64,
    sites: u64,
}

/// Wall-clock of each pipeline phase (parallel variant where both exist).
struct Phases {
    setup_ms: f64,
    encode_ms: f64,
    profile_ms: f64,
    train_ms: f64,
    crossval_ms: f64,
}

impl Phases {
    fn total_ms(&self) -> f64 {
        self.setup_ms + self.encode_ms + self.profile_ms + self.train_ms + self.crossval_ms
    }
}

fn weights_bits(w: &[f64]) -> Vec<u64> {
    w.iter().map(|x| x.to_bits()).collect()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    stages: &[StageResult],
    phases: &Phases,
    kernel: &KernelReport,
    sim: &SimReport,
    analyze: &AnalyzeReport,
    ledger: &LedgerReport,
    threads: usize,
    cores: usize,
    quick: bool,
    tracing_overhead_pct: f64,
    tracing_identical: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"phases\": {\n");
    s.push_str(&format!("    \"setup_ms\": {:.3},\n", phases.setup_ms));
    s.push_str(&format!("    \"encode_ms\": {:.3},\n", phases.encode_ms));
    s.push_str(&format!("    \"profile_ms\": {:.3},\n", phases.profile_ms));
    s.push_str(&format!("    \"train_ms\": {:.3},\n", phases.train_ms));
    s.push_str(&format!("    \"crossval_ms\": {:.3},\n", phases.crossval_ms));
    s.push_str(&format!("    \"total_ms\": {:.3}\n", phases.total_ms()));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"tracing_overhead_pct\": {tracing_overhead_pct:.3},\n"
    ));
    s.push_str(&format!("  \"tracing_identical\": {tracing_identical},\n"));
    s.push_str("  \"kernel\": {\n");
    s.push_str(&format!(
        "    \"coalesce_ratio\": {:.4},\n",
        kernel.coalesce_ratio
    ));
    s.push_str(&format!(
        "    \"train_examples_per_sec\": {:.0},\n",
        kernel.train_examples_per_sec
    ));
    s.push_str(&format!(
        "    \"train_allocs_per_epoch\": {:.2},\n",
        kernel.train_allocs_per_epoch
    ));
    s.push_str(&format!(
        "    \"kernel_speedup\": {:.3},\n",
        kernel.kernel_speedup
    ));
    s.push_str(&format!(
        "    \"kernel_identical\": {},\n",
        kernel.kernel_identical
    ));
    s.push_str(&format!(
        "    \"predict_rows_per_sec\": {:.0},\n",
        kernel.predict_rows_per_sec
    ));
    s.push_str(&format!(
        "    \"predict_rows_per_sec_f32\": {:.0},\n",
        kernel.predict_rows_per_sec_f32
    ));
    s.push_str(&format!(
        "    \"batch_kernel_speedup\": {:.3},\n",
        kernel.batch_kernel_speedup
    ));
    s.push_str(&format!(
        "    \"batch_kernel_identical\": {},\n",
        kernel.batch_kernel_identical
    ));
    s.push_str(&format!(
        "    \"f32_kernel_identical\": {}\n",
        kernel.f32_kernel_identical
    ));
    s.push_str("  },\n");
    s.push_str("  \"sim\": {\n");
    s.push_str(&format!("    \"sim_programs\": {},\n", sim.programs));
    s.push_str(&format!("    \"sim_events_total\": {},\n", sim.events_total));
    s.push_str(&format!(
        "    \"sim_trace_record_ms\": {:.3},\n",
        sim.trace_record_ms
    ));
    s.push_str(&format!("    \"sim_replay_ms\": {:.3},\n", sim.replay_ms));
    s.push_str(&format!(
        "    \"sim_branches_per_sec\": {:.0},\n",
        sim.branches_per_sec
    ));
    s.push_str(&format!(
        "    \"sim_deterministic\": {}\n",
        sim.deterministic
    ));
    s.push_str("  },\n");
    s.push_str("  \"analyze\": {\n");
    s.push_str(&format!(
        "    \"analyze_branches_total\": {},\n",
        analyze.branches_total
    ));
    s.push_str(&format!(
        "    \"lint_findings_total\": {},\n",
        analyze.findings_total
    ));
    s.push_str(&format!("    \"analyze_ms\": {:.3},\n", analyze.analyze_ms));
    s.push_str(&format!(
        "    \"analyze_branches_per_sec\": {:.0},\n",
        analyze.branches_per_sec
    ));
    s.push_str(&format!(
        "    \"analyze_deterministic\": {}\n",
        analyze.deterministic
    ));
    s.push_str("  },\n");
    s.push_str("  \"ledger\": {\n");
    s.push_str(&format!(
        "    \"ledger_rows_per_sec_on\": {:.0},\n",
        ledger.rows_per_sec_on
    ));
    s.push_str(&format!(
        "    \"ledger_rows_per_sec_off\": {:.0},\n",
        ledger.rows_per_sec_off
    ));
    s.push_str(&format!(
        "    \"ledger_overhead_pct\": {:.3},\n",
        ledger.overhead_pct
    ));
    s.push_str(&format!("    \"ledger_sites\": {}\n", ledger.sites));
    s.push_str("  },\n");
    s.push_str("  \"stages\": [\n");
    for (i, st) in stages.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"bitwise_identical\": {}}}{}\n",
            st.name,
            st.serial_ms,
            st.parallel_ms,
            st.speedup(),
            st.bitwise_identical,
            if i + 1 < stages.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
