//! End-to-end test of the serving subsystem: train a real (small) ESP model,
//! publish it to a registry, serve it on an ephemeral port, drive it with
//! `Client`, and check that every probability that comes back over TCP is
//! bitwise identical to in-process inference — plus cache accounting and
//! graceful shutdown.

use esp_artifact::{AnyArtifact, ModelArtifact, ModelMeta, Registry};
use esp_core::{encode, EspConfig, EspModel, Learner, TrainingProgram};
use esp_eval::SuiteData;
use esp_nnet::MlpConfig;
use esp_serve::{serve, serve_any, Client, Precision, PredictRow, ServeConfig};

#[test]
fn served_predictions_match_in_process_bitwise() {
    // Train a quick real model on two corpus programs.
    let suite = SuiteData::build_subset(&["sort", "grep"], &esp_lang::CompilerConfig::default());
    let group: Vec<TrainingProgram<'_>> = suite
        .benches
        .iter()
        .map(|b| TrainingProgram {
            prog: &b.prog,
            analysis: &b.analysis,
            profile: &b.profile,
        })
        .collect();
    let cfg = EspConfig {
        learner: Learner::Net(MlpConfig {
            hidden: 4,
            max_epochs: 25,
            patience: 6,
            restarts: 1,
            ..MlpConfig::default()
        }),
        threads: 1,
        ..EspConfig::default()
    };
    let model = EspModel::train(&group, &cfg);

    // Publish to a registry and reload — the server sees only the artifact.
    let root = std::env::temp_dir().join(format!("esp-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let reg = Registry::open(&root);
    let artifact = ModelArtifact::from_model(
        &model,
        ModelMeta {
            corpus_id: "serve-integration".into(),
            seed: MlpConfig::default().seed,
            fold: None,
            examples: model.num_examples() as u64,
            train_config: "serve-integration quick net".into(),
        },
        None,
    )
    .expect("network model");
    reg.publish("it-model", &artifact).expect("publish");
    let (_, served_artifact) = reg.load("it-model", None).expect("reload");

    // Serve on an ephemeral loopback port.
    let handle = serve(&served_artifact, "127.0.0.1:0", &ServeConfig::default())
        .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let info = client.info().expect("info");
    assert_eq!(info.dim as usize, artifact.dim());
    assert_eq!(info.corpus_id, "serve-integration");

    // Every branch site of every program: raw encoded rows over the wire
    // must come back with the exact bits in-process inference produces.
    let set = *model.encoder().feature_set();
    let mut expected: Vec<f64> = Vec::new();
    let mut rows: Vec<PredictRow> = Vec::new();
    for b in &suite.benches {
        for site in b.prog.branch_sites() {
            let f = esp_core::extract(&b.prog, &b.analysis, site);
            let (row, mask) = encode(&f, &set);
            rows.push(PredictRow { row, mask });
            expected.push(model.predict_prob(&b.prog, &b.analysis, site));
        }
    }
    assert!(rows.len() > 50, "want a meaty batch, got {}", rows.len());

    let preds = client.predict(rows.clone()).expect("predict batch");
    assert_eq!(preds.len(), expected.len());
    for (i, (p, e)) in preds.iter().zip(&expected).enumerate() {
        assert_eq!(
            p.prob.to_bits(),
            e.to_bits(),
            "row {i}: served {} != in-process {e}",
            p.prob
        );
        assert_eq!(p.taken, *e > 0.5, "row {i}: direction disagrees");
    }

    // Re-sending the same batch must be answered from the cache, and the
    // hit counter must advance by exactly the batch size.
    let stats_before = client.stats().expect("stats");
    let again = client.predict(rows.clone()).expect("cached batch");
    for (p, e) in again.iter().zip(&expected) {
        assert_eq!(p.prob.to_bits(), e.to_bits(), "cache must not change bits");
    }
    let stats_after = client.stats().expect("stats");
    assert_eq!(
        stats_after.cache_hits - stats_before.cache_hits,
        rows.len() as u64,
        "second pass should be all cache hits"
    );
    assert!(stats_after.cache_hit_rate() > 0.0);
    assert_eq!(stats_after.predictions, 2 * rows.len() as u64);

    // Graceful shutdown: acknowledged over the wire, then the whole server
    // (acceptor + connection threads) joins.
    client.shutdown().expect("shutdown ack");
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn f32_serving_matches_in_process_quantized_inference_bitwise() {
    let artifact = ModelArtifact::synthetic(12, 4, 33);
    let qmodel = artifact.quantize().to_model();

    // Serve the f64 artifact quantized down at load (`--precision f32`).
    let cfg = ServeConfig {
        precision: Some(Precision::F32),
        ..ServeConfig::default()
    };
    let handle = serve(&artifact, "127.0.0.1:0", &cfg).expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");

    let rows: Vec<PredictRow> = (0..40)
        .map(|i| PredictRow {
            row: (0..12).map(|j| ((i * 12 + j) as f64).sin()).collect(),
            mask: (0..12).map(|j| (i + j) % 7 != 0).collect(),
        })
        .collect();
    let preds = client.predict(rows.clone()).expect("predict");
    for (i, (p, r)) in preds.iter().zip(&rows).enumerate() {
        let local = qmodel.predict_prob_encoded(&r.row, &r.mask);
        assert_eq!(
            p.prob.to_bits(),
            local.to_bits(),
            "row {i}: served f32 {} != in-process f32 {local}",
            p.prob
        );
    }

    // The precision gauge reports the served width.
    assert!(handle
        .metrics_text()
        .contains("esp_serve_predict_precision 32"));
    handle.shutdown();

    // A quantized artifact round-trips bytes and serves the same bits.
    let q = AnyArtifact::F32(artifact.quantize());
    let q = AnyArtifact::from_bytes(&q.to_bytes()).expect("f32 artifact round-trips");
    let handle = serve_any(&q, "127.0.0.1:0", &ServeConfig::default()).expect("serve f32 kind");
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    let preds2 = client.predict(rows.clone()).expect("predict");
    for (p, p2) in preds.iter().zip(&preds2) {
        assert_eq!(p.prob.to_bits(), p2.prob.to_bits());
    }
    handle.shutdown();

    // Asking an f32 artifact for f64 precision is refused at startup.
    match serve_any(
        &q,
        "127.0.0.1:0",
        &ServeConfig {
            precision: Some(Precision::F64),
            ..ServeConfig::default()
        },
    ) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("f32 artifact must not serve at f64"),
    }
}

#[test]
fn predict_chunk_of_one_is_bitwise_identical() {
    // The fan-out chunk size is a pure performance knob: the degenerate
    // chunk of 1 row per worker must produce the same bits as the default.
    let artifact = ModelArtifact::synthetic(10, 3, 77);
    let rows: Vec<PredictRow> = (0..64)
        .map(|i| PredictRow {
            row: (0..10).map(|j| ((i + j * 31) as f64).cos()).collect(),
            mask: vec![true; 10],
        })
        .collect();

    let mut got = Vec::new();
    for chunk in [1usize, 32] {
        let cfg = ServeConfig {
            predict_chunk: chunk,
            cache_capacity: 0, // force every row through the compute path
            ..ServeConfig::default()
        };
        let handle = serve(&artifact, "127.0.0.1:0", &cfg).expect("bind");
        let mut client = Client::connect(handle.addr().to_string()).expect("connect");
        let preds = client.predict(rows.clone()).expect("predict");
        got.push(preds.iter().map(|p| p.prob.to_bits()).collect::<Vec<_>>());
        handle.shutdown();
    }
    assert_eq!(got[0], got[1], "chunk size changed prediction bits");
}

#[test]
fn dimension_mismatch_is_a_remote_error_not_a_crash() {
    let artifact = ModelArtifact::synthetic(9, 3, 21);
    let handle =
        serve(&artifact, "127.0.0.1:0", &ServeConfig::default()).expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");

    let bad = PredictRow {
        row: vec![0.0; 4],
        mask: vec![true; 4],
    };
    let err = client.predict(vec![bad]).expect_err("dim mismatch");
    assert!(
        matches!(err, esp_serve::ServeError::Remote(_)),
        "expected a remote error, got {err:?}"
    );

    // The connection survives the error and keeps serving.
    let good = PredictRow {
        row: vec![0.25; 9],
        mask: vec![true; 9],
    };
    let preds = client.predict(vec![good.clone()]).expect("still serving");
    let local = artifact
        .to_model()
        .predict_prob_encoded(&good.row, &good.mask);
    assert_eq!(preds[0].prob.to_bits(), local.to_bits());
    handle.shutdown();
}
