//! Little-endian byte encoding primitives shared by the artifact format:
//! a growable writer, a bounds-checked reader whose every failure is a
//! typed [`ArtifactError`], and the CRC32 (IEEE) used to checksum payloads.
//!
//! Floats travel as raw IEEE-754 bits (`to_bits`/`from_bits`), so a
//! round-tripped model is *bit*-identical, not merely approximately equal.

use crate::error::ArtifactError;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append an `f32` as its raw IEEE-754 bits.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, xs: &[f64]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.f64(x);
        }
    }

    /// Append a length-prefixed `f32` slice (4 bytes per element).
    pub fn f32_slice(&mut self, xs: &[f32]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.f32(x);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start decoding at the front of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an `f32` from its raw IEEE-754 bits.
    pub fn f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ArtifactError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("string is not valid UTF-8".into()))
    }

    /// Read a length-prefixed `f64` slice. The length is validated against
    /// the remaining bytes *before* allocating, so a corrupt length cannot
    /// ask for gigabytes.
    pub fn f64_slice(&mut self) -> Result<Vec<f64>, ArtifactError> {
        let len = self.u32()? as usize;
        if self.remaining() < len * 8 {
            return Err(ArtifactError::Truncated {
                needed: len * 8,
                available: self.remaining(),
            });
        }
        (0..len).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed `f32` slice, with the same
    /// validate-length-before-allocating discipline as
    /// [`ByteReader::f64_slice`].
    pub fn f32_slice(&mut self) -> Result<Vec<f32>, ArtifactError> {
        let len = self.u32()? as usize;
        if self.remaining() < len * 4 {
            return Err(ArtifactError::Truncated {
                needed: len * 4,
                available: self.remaining(),
            });
        }
        (0..len).map(|_| self.f32()).collect()
    }

    /// Assert the buffer was consumed exactly.
    pub fn finish(self) -> Result<(), ArtifactError> {
        if self.remaining() != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.125);
        w.str("hello ✓");
        w.f64_slice(&[1.5, f64::NAN, -0.0]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(r.str().unwrap(), "hello ✓");
        let xs = r.f64_slice().unwrap();
        assert_eq!(xs.len(), 3);
        assert!(xs[1].is_nan());
        assert_eq!(xs[2].to_bits(), (-0.0f64).to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn f32_round_trip_is_bitwise() {
        let mut w = ByteWriter::new();
        w.f32(-0.1);
        w.f32_slice(&[1.5, f32::NAN, -0.0, 3.0e-40]); // incl. NaN + subnormal
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.1f32).to_bits());
        let xs = r.f32_slice().unwrap();
        assert_eq!(xs.len(), 4);
        assert!(xs[1].is_nan());
        assert_eq!(xs[2].to_bits(), (-0.0f32).to_bits());
        assert_eq!(xs[3].to_bits(), (3.0e-40f32).to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn oversized_f32_slice_is_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.f32_slice(), Err(ArtifactError::Truncated { .. })));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        match r.u64() {
            Err(ArtifactError::Truncated { needed, available }) => {
                assert_eq!((needed, available), (8, 5));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_slice_length_is_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX); // claims ~4 billion floats
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.f64_slice(),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let _ = r.u8().unwrap();
        assert!(matches!(r.finish(), Err(ArtifactError::Malformed(_))));
    }
}
