//! The predictor arena: replay one recorded trace through every static and
//! dynamic scheme simultaneously and tally expected mispredictions.
//!
//! Static schemes are per-site direction assignments (`Option<bool>`, with
//! `None` = site uncovered by the scheme); an uncovered site is charged
//! 0.5 misses per event, matching `esp-eval`'s expected-miss convention so
//! the static columns of the dynamic table agree with Table 4 exactly.
//! Dynamic predictors implement [`Predictor`] and are stepped
//! predict-then-update per event in recorded execution order.
//!
//! Besides whole-trace misses the arena separately tallies misses inside
//! the **warmup window** (the first [`ArenaConfig::warmup_events`] events):
//! the regime where the ESP-seeded hybrid's prior should pay off against a
//! cold TAGE.

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::predictor::Predictor;
use crate::tage::{Tage, TageConfig};
use crate::trace::{Trace, TraceError};

/// A static prediction scheme: one fixed direction (or nothing) per site in
/// the trace's site table.
#[derive(Debug, Clone)]
pub struct StaticScheme<'a> {
    /// Display name for the result row (e.g. `"BTFNT"`, `"ESP"`).
    pub name: String,
    /// Per-site predicted direction, indexed like `Trace::sites`; `None`
    /// means the scheme does not cover the site (charged 0.5 per event).
    pub preds: &'a [Option<bool>],
}

/// Arena geometry: dynamic-predictor table sizes and the warmup window.
#[derive(Debug, Clone)]
pub struct ArenaConfig {
    /// Events counted as "warmup" for the separate warmup-miss tally.
    pub warmup_events: u64,
    /// log2 entries of the standalone bimodal predictor.
    pub bimodal_log2: u32,
    /// log2 entries of the gshare table.
    pub gshare_log2: u32,
    /// History bits folded into the gshare index.
    pub gshare_hist: u32,
    /// Geometry of both TAGE variants (cold and ESP-seeded).
    pub tage: TageConfig,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            warmup_events: 2048,
            bimodal_log2: 12,
            gshare_log2: 12,
            gshare_hist: 12,
            tage: TageConfig::default(),
        }
    }
}

/// Miss tallies for one scheme over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// Scheme name (static name or `Predictor::name`).
    pub name: String,
    /// Expected misses over the whole trace (fractional only for static
    /// schemes with uncovered sites).
    pub misses: f64,
    /// Expected misses inside the warmup window.
    pub warmup_misses: f64,
}

/// Result of one arena replay: every scheme's tallies over the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaResult {
    /// Total events replayed.
    pub events: u64,
    /// Size of the warmup window actually applied (≤ `events`).
    pub warmup_events: u64,
    /// Per-scheme tallies: statics first (caller order), then `bimodal`,
    /// `gshare`, `tage`, and `esp+tage` when priors were supplied.
    pub schemes: Vec<SchemeResult>,
}

impl ArenaResult {
    /// Tallies for the named scheme.
    pub fn scheme(&self, name: &str) -> Option<&SchemeResult> {
        self.schemes.iter().find(|s| s.name == name)
    }

    /// Whole-trace miss rate (misses / events) for the named scheme.
    pub fn miss_rate(&self, name: &str) -> Option<f64> {
        if self.events == 0 {
            return None;
        }
        Some(self.scheme(name)?.misses / self.events as f64)
    }
}

/// Replay `trace` through all static schemes, the three cold dynamic
/// predictors (bimodal, gshare, TAGE) and — when `esp_priors` is given —
/// the ESP-seeded TAGE hybrid whose base table starts from the trained
/// network's per-site taken-probabilities.
///
/// Deterministic: same trace and inputs, bitwise-same result, every time.
///
/// # Errors
///
/// [`TraceError::Malformed`] when a static scheme's or the priors' length
/// does not match the trace's site table, or when the trace's packed stream
/// is invalid.
pub fn replay_arena(
    trace: &Trace,
    statics: &[StaticScheme<'_>],
    esp_priors: Option<&[f64]>,
    cfg: &ArenaConfig,
) -> Result<ArenaResult, TraceError> {
    let n_sites = trace.num_sites();
    for s in statics {
        if s.preds.len() != n_sites {
            return Err(TraceError::Malformed(format!(
                "static scheme '{}' covers {} sites, trace has {n_sites}",
                s.name,
                s.preds.len()
            )));
        }
    }
    if let Some(p) = esp_priors {
        if p.len() != n_sites {
            return Err(TraceError::Malformed(format!(
                "{} ESP priors for {n_sites} trace sites",
                p.len()
            )));
        }
    }

    let _sp = esp_obs::span!(
        "sim",
        "replay_arena",
        program = trace.program.as_str(),
        events = trace.events
    );

    let mut dynamics: Vec<Box<dyn Predictor>> = vec![
        Box::new(Bimodal::new(cfg.bimodal_log2)),
        Box::new(Gshare::new(cfg.gshare_log2, cfg.gshare_hist)),
        Box::new(Tage::new(cfg.tage.clone())),
    ];
    if let Some(priors) = esp_priors {
        dynamics.push(Box::new(Tage::with_seeded_base(cfg.tage.clone(), priors)));
    }

    let warmup = cfg.warmup_events.min(trace.events);
    let mut static_miss = vec![(0.0f64, 0.0f64); statics.len()];
    let mut dyn_miss = vec![(0u64, 0u64); dynamics.len()];
    let mut event_no = 0u64;

    trace.replay(|site, taken| {
        let in_warmup = event_no < warmup;
        for (s, m) in statics.iter().zip(static_miss.iter_mut()) {
            let miss = match s.preds[site as usize] {
                Some(dir) => {
                    if dir == taken {
                        0.0
                    } else {
                        1.0
                    }
                }
                None => 0.5,
            };
            m.0 += miss;
            if in_warmup {
                m.1 += miss;
            }
        }
        let pc = site as u64;
        for (d, m) in dynamics.iter_mut().zip(dyn_miss.iter_mut()) {
            let pred = d.predict(pc);
            d.update(pc, taken, pred);
            if pred != taken {
                m.0 += 1;
                if in_warmup {
                    m.1 += 1;
                }
            }
        }
        event_no += 1;
    })?;

    let metrics = esp_obs::global_metrics();
    metrics.counter("esp_sim_replays_total").add(1);
    metrics.counter("esp_sim_events_total").add(trace.events);
    metrics
        .counter("esp_sim_predictor_ops_total")
        .add(trace.events * dynamics.len() as u64);

    let mut schemes = Vec::with_capacity(statics.len() + dynamics.len());
    for (s, &(miss, wmiss)) in statics.iter().zip(&static_miss) {
        schemes.push(SchemeResult {
            name: s.name.clone(),
            misses: miss,
            warmup_misses: wmiss,
        });
    }
    for (d, &(miss, wmiss)) in dynamics.iter().zip(&dyn_miss) {
        schemes.push(SchemeResult {
            name: d.name().to_string(),
            misses: miss as f64,
            warmup_misses: wmiss as f64,
        });
    }
    Ok(ArenaResult {
        events: trace.events,
        warmup_events: warmup,
        schemes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use esp_ir::{BlockId, BranchId, FuncId};

    fn two_site_trace(events_per_site: u32) -> Trace {
        let sites = vec![
            BranchId {
                func: FuncId(0),
                block: BlockId(0),
            },
            BranchId {
                func: FuncId(0),
                block: BlockId(1),
            },
        ];
        let mut b = TraceBuilder::new("toy", sites);
        for i in 0..events_per_site {
            b.record(0, true); // site 0 always taken
            b.record(1, i % 2 == 0); // site 1 alternates
        }
        b.finish()
    }

    #[test]
    fn static_scheme_accounting_matches_hand_counts() {
        let trace = two_site_trace(100);
        let always = vec![Some(true), Some(true)];
        let uncovered = vec![Some(true), None];
        let statics = [
            StaticScheme {
                name: "always-taken".into(),
                preds: &always,
            },
            StaticScheme {
                name: "half-covered".into(),
                preds: &uncovered,
            },
        ];
        let r = replay_arena(&trace, &statics, None, &ArenaConfig::default()).unwrap();
        // always-taken: site 0 never misses, site 1 misses the 50 not-taken.
        assert_eq!(r.scheme("always-taken").unwrap().misses, 50.0);
        // half-covered: site 1 uncovered → 0.5 × 100 events.
        assert_eq!(r.scheme("half-covered").unwrap().misses, 50.0);
        assert_eq!(r.events, 200);
    }

    #[test]
    fn dynamic_predictors_present_and_ordered() {
        let trace = two_site_trace(50);
        let priors = vec![0.95, 0.5];
        let r = replay_arena(&trace, &[], Some(&priors), &ArenaConfig::default()).unwrap();
        let names: Vec<&str> = r.schemes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["bimodal", "gshare", "tage", "esp+tage"]);
        // gshare learns the alternation; bimodal cannot.
        let g = r.scheme("gshare").unwrap().misses;
        let b = r.scheme("bimodal").unwrap().misses;
        assert!(g < b, "gshare {g} should beat bimodal {b} on alternation");
    }

    #[test]
    fn replay_arena_is_deterministic() {
        let trace = two_site_trace(200);
        let priors = vec![0.9, 0.1];
        let a = replay_arena(&trace, &[], Some(&priors), &ArenaConfig::default()).unwrap();
        let b = replay_arena(&trace, &[], Some(&priors), &ArenaConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mismatched_scheme_length_is_a_typed_error() {
        let trace = two_site_trace(1);
        let short = vec![Some(true)];
        let statics = [StaticScheme {
            name: "short".into(),
            preds: &short,
        }];
        let err = replay_arena(&trace, &statics, None, &ArenaConfig::default()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn warmup_window_clamps_to_trace_length() {
        let trace = two_site_trace(3); // 6 events
        let r = replay_arena(&trace, &[], None, &ArenaConfig::default()).unwrap();
        assert_eq!(r.warmup_events, 6);
    }
}
