//! A small Scheme front end, compiled *through C* — the reproduction of the
//! paper's "Scheme-to-C" pipeline (§3.1.2).
//!
//! The paper applied the Ball–Larus heuristics to three Scheme programs
//! (`boyer`, `corewar`, `sccomp`, "all compiled with the Scheme-to-C
//! compiler") and found the Return heuristic missing 56% and the Pointer
//! heuristic 89% of the time: in a language where recursion is the iteration
//! mechanism and cons-cell traversal ends in a *successful* null check,
//! C-bred intuitions invert. This front end lets the reproduction stage the
//! same experiment.
//!
//! Supported forms:
//!
//! ```text
//! (define (name arg ...) body ... )          ; last body expression is returned
//! (if c t e)   (let ((x e) ...) body ...)    (begin e ...)
//! (+ a b) (- a b) (* a b) (quotient a b) (modulo a b)
//! (< a b) (<= a b) (> a b) (>= a b) (= a b)
//! (and a b) (or a b) (not a)
//! (cons a d) (car p) (cdr p) (null? p) 'nil
//! integer literals, variables, calls (name a ...)
//! ```
//!
//! Every Scheme value is machine-word sized: integers are themselves, the
//! empty list `'nil` is the null pointer, and a cons cell is a pointer to
//! two heap words — exactly the untyped representation a 1990s Scheme-to-C
//! compiler produced. All generated functions carry `Lang::C`, because that
//! is what the binary-level study would see.

use esp_ir::Lang;

use crate::ast::{BinOp, Expr, FuncDecl, LValue, Module, Stmt, Type, UnOp};
use crate::error::ParseError;

// ---------------------------------------------------------------------------
// S-expression reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Int(i64),
    Sym(String),
    List(Vec<Sexp>),
}

fn read_all(src: &str) -> Result<Vec<Sexp>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1u32;
    let b = src.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b';' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' | b')' => {
                toks.push((String::from_utf8_lossy(&b[i..i + 1]).to_string(), line));
                i += 1;
            }
            b'\'' => {
                toks.push(("'".to_string(), line));
                i += 1;
            }
            _ => {
                let start = i;
                while i < b.len()
                    && !b[i].is_ascii_whitespace()
                    && b[i] != b'('
                    && b[i] != b')'
                    && b[i] != b';'
                {
                    i += 1;
                }
                toks.push((
                    String::from_utf8_lossy(&b[start..i]).to_string(),
                    line,
                ));
            }
        }
    }

    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < toks.len() {
        out.push(parse_sexp(&toks, &mut pos)?);
    }
    Ok(out)
}

fn parse_sexp(toks: &[(String, u32)], pos: &mut usize) -> Result<Sexp, ParseError> {
    let Some((tok, line)) = toks.get(*pos) else {
        return Err(ParseError::new(0, "unexpected end of input"));
    };
    *pos += 1;
    match tok.as_str() {
        "(" => {
            let mut items = Vec::new();
            loop {
                match toks.get(*pos) {
                    Some((t, _)) if t == ")" => {
                        *pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_sexp(toks, pos)?),
                    None => return Err(ParseError::new(*line, "unclosed `(`")),
                }
            }
        }
        ")" => Err(ParseError::new(*line, "unexpected `)`")),
        "'" => {
            // only 'nil (the empty list) is supported
            let quoted = parse_sexp(toks, pos)?;
            match quoted {
                Sexp::Sym(s) if s == "nil" || s == "()" => Ok(Sexp::Sym("nil".to_string())),
                other => Err(ParseError::new(
                    *line,
                    format!("only 'nil may be quoted, found {other:?}"),
                )),
            }
        }
        t => {
            if let Ok(v) = t.parse::<i64>() {
                Ok(Sexp::Int(v))
            } else {
                Ok(Sexp::Sym(t.to_string()))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Translation to the shared AST (ANF-style: effects become statements)
// ---------------------------------------------------------------------------

struct Translator {
    /// Fresh-name counter for temporaries and renamed `let` bindings.
    fresh: u32,
    /// Lexical environment: source name → mangled AST name.
    scopes: Vec<Vec<(String, String)>>,
}

impl Translator {
    fn fresh_name(&mut self, stem: &str) -> String {
        self.fresh += 1;
        format!("__{stem}{}", self.fresh)
    }

    fn lookup(&self, name: &str) -> Option<String> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|(_, m)| m.clone()))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(0, msg)
    }

    /// Translate an expression; statements carrying its effects are pushed
    /// to `out` and the returned [`Expr`] is effect-free.
    fn tr(&mut self, e: &Sexp, out: &mut Vec<Stmt>) -> Result<Expr, ParseError> {
        match e {
            Sexp::Int(v) => Ok(Expr::Int(*v)),
            Sexp::Sym(s) if s == "nil" => Ok(Expr::Int(0)),
            Sexp::Sym(s) => self
                .lookup(s)
                .map(Expr::Var)
                .ok_or_else(|| self.err(format!("unbound variable `{s}`"))),
            Sexp::List(items) => self.tr_list(items, out),
        }
    }

    fn tr_list(&mut self, items: &[Sexp], out: &mut Vec<Stmt>) -> Result<Expr, ParseError> {
        let Some(Sexp::Sym(head)) = items.first() else {
            return Err(self.err("expected an operator or function name"));
        };
        let args = &items[1..];
        let binop = |op: BinOp| -> Option<BinOp> { Some(op) };
        let simple = match head.as_str() {
            "+" => binop(BinOp::Add),
            "-" => binop(BinOp::Sub),
            "*" => binop(BinOp::Mul),
            "quotient" => binop(BinOp::Div),
            "modulo" => binop(BinOp::Rem),
            "<" => binop(BinOp::Lt),
            "<=" => binop(BinOp::Le),
            ">" => binop(BinOp::Gt),
            ">=" => binop(BinOp::Ge),
            "=" | "eq?" => binop(BinOp::Eq),
            "and" => binop(BinOp::And),
            "or" => binop(BinOp::Or),
            _ => None,
        };
        if let Some(op) = simple {
            if args.len() != 2 {
                return Err(self.err(format!("`{head}` takes 2 arguments")));
            }
            let a = self.tr(&args[0], out)?;
            let b = self.tr(&args[1], out)?;
            return Ok(Expr::Bin(op, Box::new(a), Box::new(b)));
        }
        match head.as_str() {
            "not" => {
                if args.len() != 1 {
                    return Err(self.err("`not` takes 1 argument"));
                }
                let a = self.tr(&args[0], out)?;
                Ok(Expr::Un(UnOp::Not, Box::new(a)))
            }
            "null?" => {
                if args.len() != 1 {
                    return Err(self.err("`null?` takes 1 argument"));
                }
                let a = self.tr(&args[0], out)?;
                // A genuine pointer comparison against null: the value is
                // cast to a pointer so the binary-level Pointer heuristic
                // sees what the Scheme-to-C compiler produced.
                Ok(Expr::Bin(
                    BinOp::Eq,
                    Box::new(Expr::Cast(Type::PtrInt, Box::new(a))),
                    Box::new(Expr::Null),
                ))
            }
            "cons" => {
                if args.len() != 2 {
                    return Err(self.err("`cons` takes 2 arguments"));
                }
                let car = self.tr(&args[0], out)?;
                let cdr = self.tr(&args[1], out)?;
                let cell = self.fresh_name("cell");
                out.push(Stmt::Let {
                    name: cell.clone(),
                    ty: Type::PtrInt,
                    init: Some(Expr::Alloc(Type::Int, Box::new(Expr::Int(2)))),
                });
                out.push(Stmt::Assign(
                    LValue::Index(Box::new(Expr::Var(cell.clone())), Box::new(Expr::Int(0))),
                    car,
                ));
                out.push(Stmt::Assign(
                    LValue::Index(Box::new(Expr::Var(cell.clone())), Box::new(Expr::Int(1))),
                    cdr,
                ));
                Ok(Expr::Var(cell))
            }
            "car" | "cdr" => {
                if args.len() != 1 {
                    return Err(self.err(format!("`{head}` takes 1 argument")));
                }
                let p = self.tr(&args[0], out)?;
                let off = if head == "car" { 0 } else { 1 };
                Ok(Expr::Index(
                    Box::new(Expr::Cast(Type::PtrInt, Box::new(p))),
                    Box::new(Expr::Int(off)),
                ))
            }
            "if" => {
                if args.len() != 3 {
                    return Err(self.err("`if` takes exactly 3 arguments"));
                }
                let cond = self.tr(&args[0], out)?;
                let result = self.fresh_name("if");
                out.push(Stmt::Let {
                    name: result.clone(),
                    ty: Type::Int,
                    init: None,
                });
                let mut then_blk = Vec::new();
                let tv = self.tr(&args[1], &mut then_blk)?;
                then_blk.push(Stmt::Assign(LValue::Var(result.clone()), tv));
                let mut else_blk = Vec::new();
                let ev = self.tr(&args[2], &mut else_blk)?;
                else_blk.push(Stmt::Assign(LValue::Var(result.clone()), ev));
                out.push(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                });
                Ok(Expr::Var(result))
            }
            "let" => {
                let Some(Sexp::List(bindings)) = args.first() else {
                    return Err(self.err("`let` needs a binding list"));
                };
                self.scopes.push(Vec::new());
                for b in bindings {
                    let Sexp::List(pair) = b else {
                        return Err(self.err("malformed `let` binding"));
                    };
                    let [Sexp::Sym(name), init] = pair.as_slice() else {
                        return Err(self.err("malformed `let` binding"));
                    };
                    let init = self.tr(init, out)?;
                    let mangled = self.fresh_name("let");
                    out.push(Stmt::Let {
                        name: mangled.clone(),
                        ty: Type::Int,
                        init: Some(Expr::Cast(Type::Int, Box::new(init))),
                    });
                    self.scopes
                        .last_mut()
                        .expect("just pushed")
                        .push((name.clone(), mangled));
                }
                let mut last = Expr::Int(0);
                for body in &args[1..] {
                    last = self.tr(body, out)?;
                }
                self.scopes.pop();
                Ok(last)
            }
            "begin" => {
                let mut last = Expr::Int(0);
                for e in args {
                    last = self.tr(e, out)?;
                }
                Ok(last)
            }
            name => {
                // function call; materialise into a temp
                let mut actuals = Vec::new();
                for a in args {
                    actuals.push(self.tr(a, out)?);
                }
                let tmp = self.fresh_name("call");
                out.push(Stmt::Let {
                    name: tmp.clone(),
                    ty: Type::Int,
                    init: Some(Expr::Call(name.to_string(), actuals)),
                });
                Ok(Expr::Var(tmp))
            }
        }
    }
}

/// Parse and translate a Scheme program into the shared AST, as the
/// Scheme-to-C compiler would (every function tagged [`Lang::C`]).
///
/// The program must define `(define (main) …)`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed s-expressions or unsupported forms.
pub fn parse(name: &str, src: &str) -> Result<Module, ParseError> {
    let tops = read_all(src)?;
    let mut funcs = Vec::new();
    for top in &tops {
        let Sexp::List(items) = top else {
            return Err(ParseError::new(0, "top level must be a `define`"));
        };
        let [Sexp::Sym(kw), Sexp::List(sig), body @ ..] = items.as_slice() else {
            return Err(ParseError::new(0, "top level must be `(define (f …) …)`"));
        };
        if kw != "define" || body.is_empty() {
            return Err(ParseError::new(0, "top level must be `(define (f …) body…)`"));
        }
        let [Sexp::Sym(fname), params @ ..] = sig.as_slice() else {
            return Err(ParseError::new(0, "bad function signature"));
        };
        let mut tr = Translator {
            fresh: 0,
            scopes: vec![Vec::new()],
        };
        let mut decl_params = Vec::new();
        for p in params {
            let Sexp::Sym(pn) = p else {
                return Err(ParseError::new(0, "parameters must be symbols"));
            };
            // parameters keep their own names (unique per function)
            tr.scopes
                .last_mut()
                .expect("scope exists")
                .push((pn.clone(), pn.clone()));
            decl_params.push((pn.clone(), Type::Int));
        }
        let mut stmts = Vec::new();
        let mut last = Expr::Int(0);
        for e in body {
            last = tr.tr(e, &mut stmts)?;
        }
        stmts.push(Stmt::Return(Some(Expr::Cast(Type::Int, Box::new(last)))));
        funcs.push(FuncDecl {
            name: fname.clone(),
            params: decl_params,
            ret: Some(Type::Int),
            body: stmts,
            lang: Lang::C, // compiled through C, as in the paper
        });
    }
    Ok(Module {
        name: name.to_string(),
        funcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{compile_module, CompilerConfig};

    fn run(src: &str) -> i64 {
        let module = parse("t", src).expect("parses");
        let prog = compile_module(module, &CompilerConfig::default()).expect("compiles");
        let out = esp_exec::run(&prog, &esp_exec::ExecLimits::default()).expect("runs");
        match out.ret {
            Some(esp_exec::Value::Int(v)) => v,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_if() {
        assert_eq!(run("(define (main) (+ 1 (* 2 3)))"), 7);
        assert_eq!(run("(define (main) (if (< 1 2) 10 20))"), 10);
        assert_eq!(run("(define (main) (if (not (< 1 2)) 10 20))"), 20);
    }

    #[test]
    fn recursion_is_iteration() {
        let src = r#"
            (define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))
            (define (main) (fact 10))
        "#;
        assert_eq!(run(src), 3628800);
    }

    #[test]
    fn cons_car_cdr_and_null() {
        let src = r#"
            (define (len lst) (if (null? lst) 0 (+ 1 (len (cdr lst)))))
            (define (build n) (if (= n 0) 'nil (cons n (build (- n 1)))))
            (define (main) (len (build 17)))
        "#;
        assert_eq!(run(src), 17);
    }

    #[test]
    fn list_sum_via_recursion() {
        let src = r#"
            (define (build n) (if (= n 0) 'nil (cons n (build (- n 1)))))
            (define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
            (define (main) (sum (build 10)))
        "#;
        assert_eq!(run(src), 55);
    }

    #[test]
    fn let_and_begin() {
        let src = r#"
            (define (main)
              (let ((a 3) (b 4))
                (begin (+ a 0) (* a b))))
        "#;
        assert_eq!(run(src), 12);
    }

    #[test]
    fn let_shadowing_is_lexical() {
        let src = r#"
            (define (main)
              (let ((x 1))
                (+ (let ((x 10)) x) x)))
        "#;
        assert_eq!(run(src), 11);
    }

    #[test]
    fn and_or_short_circuit_protect_car() {
        let src = r#"
            (define (safe-head lst) (if (and (not (null? lst)) (> (car lst) 0)) (car lst) -1))
            (define (main) (+ (safe-head 'nil) (safe-head (cons 5 'nil))))
        "#;
        assert_eq!(run(src), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("t", "(define (main) (").is_err());
        assert!(parse("t", "42").is_err());
        assert!(parse("t", "(define (main) (undefined-var))").is_ok()); // call site ok...
        let module = parse("t", "(define (main) nosuch)").unwrap_err();
        assert!(module.msg.contains("unbound"));
        assert!(parse("t", "(define (main) 'foo)").is_err(), "only 'nil quotable");
    }
}
