//! The wire protocol spoken between `esp-serve` and `esp-client`.
//!
//! Every message is one **frame**: a `u32` little-endian payload length
//! followed by that many payload bytes, capped at [`MAX_FRAME`]. The payload
//! reuses the artifact crate's little-endian primitives; floats travel as
//! raw IEEE-754 bits, so a probability arrives at the client bit-identical
//! to the server's computation.
//!
//! Requests start with a one-byte opcode:
//!
//! ```text
//! 1 PREDICT   u32 n, u32 dim, then n × (dim f64 raw row, dim u8 mask)
//! 2 STATS     (empty body)
//! 3 INFO      (empty body)
//! 4 SHUTDOWN  (empty body)
//! ```
//!
//! Responses start with a one-byte status (`0` ok, `1` error). An error
//! carries a UTF-8 message; an ok body depends on the request:
//! PREDICT → `u32 n` then `n × (f64 prob, u8 taken)`; STATS → the nine
//! [`StatsSnapshot`] counters as `u64`s; INFO → model facts; SHUTDOWN → an
//! empty acknowledgement.

use std::io::{Read, Write};

use esp_artifact::bytes::{ByteReader, ByteWriter};
use esp_artifact::ArtifactError;

/// Hard cap on a single frame (requests this large are refused, not
/// buffered): 64 MiB.
pub const MAX_FRAME: usize = 64 << 20;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as the protocol.
    Protocol(String),
    /// The server answered with an error response.
    Remote(String),
    /// A frame declared a length beyond [`MAX_FRAME`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
            ServeError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME {
        return Err(ServeError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

const OP_PREDICT: u8 = 1;
const OP_STATS: u8 = 2;
const OP_INFO: u8 = 3;
const OP_SHUTDOWN: u8 = 4;

/// One batch row: the raw encoded feature values and their
/// meaningful-position mask (the pair `esp_core::encode` produces).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRow {
    /// Raw (un-normalized) encoded feature values.
    pub row: Vec<f64>,
    /// Meaningful-position mask; masked-out features are gated to zero
    /// after normalization, exactly as in-process inference does.
    pub mask: Vec<bool>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict a batch of feature rows.
    Predict(Vec<PredictRow>),
    /// Fetch the server's metrics counters.
    Stats,
    /// Fetch model facts (dimensionality, provenance).
    Info,
    /// Ask the server to stop accepting work and exit.
    Shutdown,
}

/// One prediction: the taken-probability and the thresholded direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Estimated probability the branch is taken, in `[0, 1]`.
    pub prob: f64,
    /// Hard decision at the paper's 0.5 threshold.
    pub taken: bool,
}

/// Server metrics counters, as served by a STATS request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted since startup.
    pub connections: u64,
    /// Frames handled (all opcodes).
    pub requests: u64,
    /// PREDICT requests (batches) handled.
    pub predict_requests: u64,
    /// Individual rows predicted.
    pub predictions: u64,
    /// Rows answered from the LRU cache.
    pub cache_hits: u64,
    /// Rows computed by the network.
    pub cache_misses: u64,
    /// Approximate median PREDICT handling latency, microseconds.
    pub p50_us: u64,
    /// Approximate 99th-percentile PREDICT handling latency, microseconds.
    pub p99_us: u64,
    /// Worst PREDICT handling latency, microseconds.
    pub max_us: u64,
}

impl StatsSnapshot {
    /// Cache hits over all predicted rows (0 when nothing was predicted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Model facts served by an INFO request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Input dimensionality the server expects per row.
    pub dim: u32,
    /// Hidden-layer width of the served network.
    pub hidden: u32,
    /// Artifact format version the model was loaded from.
    pub format_version: u32,
    /// Corpus the model was trained on.
    pub corpus_id: String,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Batch predictions, one per request row, in request order.
    Predictions(Vec<Prediction>),
    /// Metrics counters.
    Stats(StatsSnapshot),
    /// Model facts.
    Info(ServerInfo),
    /// Shutdown acknowledged; the server exits after this reply.
    ShuttingDown,
    /// The request could not be served.
    Error(String),
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Predict(rows) => {
                w.u8(OP_PREDICT);
                w.u32(rows.len() as u32);
                let dim = rows.first().map_or(0, |r| r.row.len());
                w.u32(dim as u32);
                for r in rows {
                    for &x in &r.row {
                        w.f64(x);
                    }
                    for &m in &r.mask {
                        w.u8(m as u8);
                    }
                }
            }
            Request::Stats => w.u8(OP_STATS),
            Request::Info => w.u8(OP_INFO),
            Request::Shutdown => w.u8(OP_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut r = ByteReader::new(payload);
        let op = r.u8()?;
        let req = match op {
            OP_PREDICT => {
                let n = r.u32()? as usize;
                let dim = r.u32()? as usize;
                if n.checked_mul(dim * 9).is_none_or(|need| need > r.remaining()) {
                    return Err(ServeError::Protocol(format!(
                        "predict batch claims {n} rows × {dim} features beyond the frame"
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut row = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        row.push(r.f64()?);
                    }
                    let mut mask = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        mask.push(r.u8()? != 0);
                    }
                    rows.push(PredictRow { row, mask });
                }
                Request::Predict(rows)
            }
            OP_STATS => Request::Stats,
            OP_INFO => Request::Info,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ServeError::Protocol(format!("unknown opcode {other}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

const ST_OK: u8 = 0;
const ST_ERR: u8 = 1;
const RESP_PREDICTIONS: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_INFO: u8 = 3;
const RESP_SHUTDOWN: u8 = 4;

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Error(msg) => {
                w.u8(ST_ERR);
                w.str(msg);
            }
            Response::Predictions(ps) => {
                w.u8(ST_OK);
                w.u8(RESP_PREDICTIONS);
                w.u32(ps.len() as u32);
                for p in ps {
                    w.f64(p.prob);
                    w.u8(p.taken as u8);
                }
            }
            Response::Stats(s) => {
                w.u8(ST_OK);
                w.u8(RESP_STATS);
                for v in [
                    s.connections,
                    s.requests,
                    s.predict_requests,
                    s.predictions,
                    s.cache_hits,
                    s.cache_misses,
                    s.p50_us,
                    s.p99_us,
                    s.max_us,
                ] {
                    w.u64(v);
                }
            }
            Response::Info(i) => {
                w.u8(ST_OK);
                w.u8(RESP_INFO);
                w.u32(i.dim);
                w.u32(i.hidden);
                w.u32(i.format_version);
                w.str(&i.corpus_id);
            }
            Response::ShuttingDown => {
                w.u8(ST_OK);
                w.u8(RESP_SHUTDOWN);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut r = ByteReader::new(payload);
        let status = r.u8()?;
        if status == ST_ERR {
            let msg = r.str()?;
            r.finish()?;
            return Ok(Response::Error(msg));
        }
        let kind = r.u8()?;
        let resp = match kind {
            RESP_PREDICTIONS => {
                let n = r.u32()? as usize;
                if n.checked_mul(9).is_none_or(|need| need > r.remaining()) {
                    return Err(ServeError::Protocol(format!(
                        "prediction count {n} beyond the frame"
                    )));
                }
                let mut ps = Vec::with_capacity(n);
                for _ in 0..n {
                    let prob = r.f64()?;
                    let taken = r.u8()? != 0;
                    ps.push(Prediction { prob, taken });
                }
                Response::Predictions(ps)
            }
            RESP_STATS => Response::Stats(StatsSnapshot {
                connections: r.u64()?,
                requests: r.u64()?,
                predict_requests: r.u64()?,
                predictions: r.u64()?,
                cache_hits: r.u64()?,
                cache_misses: r.u64()?,
                p50_us: r.u64()?,
                p99_us: r.u64()?,
                max_us: r.u64()?,
            }),
            RESP_INFO => Response::Info(ServerInfo {
                dim: r.u32()?,
                hidden: r.u32()?,
                format_version: r.u32()?,
                corpus_id: r.str()?,
            }),
            RESP_SHUTDOWN => Response::ShuttingDown,
            other => {
                return Err(ServeError::Protocol(format!(
                    "unknown response kind {other}"
                )))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Predict(vec![
                PredictRow {
                    row: vec![1.0, -2.5, 0.0],
                    mask: vec![true, false, true],
                },
                PredictRow {
                    row: vec![0.5, 0.25, -0.0],
                    mask: vec![true, true, true],
                },
            ]),
            Request::Stats,
            Request::Info,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Predictions(vec![Prediction {
                prob: 0.75,
                taken: true,
            }]),
            Response::Stats(StatsSnapshot {
                connections: 1,
                requests: 9,
                predict_requests: 5,
                predictions: 40,
                cache_hits: 30,
                cache_misses: 10,
                p50_us: 120,
                p99_us: 900,
                max_us: 1500,
            }),
            Response::Info(ServerInfo {
                dim: 155,
                hidden: 10,
                format_version: 1,
                corpus_id: "cc-osf1-v1.2".into(),
            }),
            Response::ShuttingDown,
            Response::Error("no such model".into()),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = Request::Stats.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None); // clean EOF
    }

    #[test]
    fn hostile_lengths_are_typed_errors() {
        // declared frame length beyond the cap
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(ServeError::FrameTooLarge(_))
        ));
        // predict batch claiming more rows than the frame holds
        let mut w = ByteWriter::new();
        w.u8(OP_PREDICT);
        w.u32(u32::MAX);
        w.u32(1000);
        assert!(matches!(
            Request::decode(&w.into_bytes()),
            Err(ServeError::Protocol(_))
        ));
        // garbage opcode
        assert!(matches!(
            Request::decode(&[99]),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn stats_cache_hit_rate() {
        let mut s = StatsSnapshot::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
