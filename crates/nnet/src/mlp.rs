//! The feed-forward network and its training loop.
//!
//! Training is parallel at two layers — independent restarts, and per-epoch
//! gradient chunks — and *deterministic by construction*: examples are split
//! into fixed-size chunks whose boundaries never depend on the thread count,
//! each chunk's partial gradient is accumulated serially in example order,
//! and partials are combined by an ordered pairwise reduction whose shape
//! depends only on the chunk count. Any `threads` setting therefore yields
//! bitwise-identical weights.

use esp_obs::span;
use esp_runtime::{parallel_drain, parallel_map_indices, resolve_threads, Pcg32};

/// One training example: an encoded static feature vector `x`, the branch's
/// true taken-probability `target` (`t_k`), and its normalized execution
/// weight (`n_k`).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainExample {
    /// Input feature vector.
    pub x: Vec<f64>,
    /// True taken-probability in `[0, 1]`.
    pub target: f64,
    /// Normalized branch weight (relative execution frequency); weights the
    /// example's contribution to the loss.
    pub weight: f64,
}

/// Which loss drives gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LossKind {
    /// The paper's misprediction-cost loss, linear in `y`:
    /// `Σ n_k [y_k(1−t_k) + t_k(1−y_k)]`.
    #[default]
    Linear,
    /// Weighted sum of squared errors `Σ n_k (y_k − t_k)²` — the "standard
    /// measure of performance" the paper mentions before motivating its own.
    /// Useful as an ablation: the linear loss keeps pushing
    /// correctly-classified examples toward saturation, which can freeze
    /// XOR-like feature interactions; SSE does not.
    Sse,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width; `0` degenerates into a direct input→output model
    /// (a linear classifier through the squashed output), used as an
    /// ablation.
    pub hidden: usize,
    /// Loss function minimised by gradient descent. Early stopping always
    /// uses the thresholded misprediction error regardless of this choice.
    pub loss: LossKind,
    /// Independent training runs (seeds `seed`, `seed+1`, …); the run with
    /// the best thresholded error wins. A cheap escape from bad basins of
    /// the linear loss.
    pub restarts: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Multiplier applied when the epoch loss decreased ("increased if error
    /// drops regularly").
    pub lr_up: f64,
    /// Multiplier applied when the epoch loss rose ("decreased otherwise").
    pub lr_down: f64,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Early stopping: stop after this many epochs without improvement of
    /// the thresholded error.
    pub patience: usize,
    /// RNG seed for weight initialisation.
    pub seed: u64,
    /// Worker threads for restarts and gradient chunks; `0` (the default,
    /// matching `EspConfig.threads`) means one per available core. Has
    /// **no effect on the result** — only on wall-clock.
    pub threads: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 10,
            loss: LossKind::Linear,
            restarts: 2,
            learning_rate: 0.05,
            lr_up: 1.05,
            lr_down: 0.7,
            max_epochs: 300,
            patience: 25,
            seed: 0x5eed,
            threads: 0,
        }
    }
}

/// What training observed, for reporting and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs actually run (≤ `max_epochs`).
    pub epochs: usize,
    /// Final continuous loss `E`.
    pub final_loss: f64,
    /// Best (lowest) thresholded error seen; the returned network is the one
    /// that achieved it.
    pub best_thresholded_error: f64,
}

/// Examples per gradient chunk. Fixed — never derived from the thread
/// count — so chunk boundaries (and with them every floating-point sum) are
/// a function of the data alone. 128 examples amortise the scheduling cost
/// while leaving plenty of chunks to balance across workers on
/// corpus-sized folds.
const GRAD_CHUNK: usize = 128;

/// The paper's branch-prediction network (Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// `w[i][j]`: input `j` → hidden `i`.
    w: Vec<Vec<f64>>,
    /// Hidden biases.
    b: Vec<f64>,
    /// Hidden `i` → output (or input `j` → output when `hidden == 0`).
    v: Vec<f64>,
    /// Output bias.
    a: f64,
    inputs: usize,
}

impl Mlp {
    /// Number of input units.
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of hidden units.
    pub fn num_hidden(&self) -> usize {
        self.w.len()
    }

    /// Total free parameters (weights and biases).
    pub fn num_params(&self) -> usize {
        self.w.iter().map(Vec::len).sum::<usize>() + self.b.len() + self.v.len() + 1
    }

    /// Every free parameter flattened in a fixed order (hidden rows, hidden
    /// biases, output weights, output bias) — the handle determinism tests
    /// use to assert bitwise-identical training outcomes.
    pub fn flat_weights(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for row in &self.w {
            out.extend_from_slice(row);
        }
        out.extend_from_slice(&self.b);
        out.extend_from_slice(&self.v);
        out.push(self.a);
        out
    }

    /// Free parameters of an `(inputs, hidden)` topology — the length
    /// [`Mlp::from_flat_weights`] expects.
    pub fn param_count(inputs: usize, hidden: usize) -> usize {
        inputs * hidden + hidden + (if hidden == 0 { inputs } else { hidden }) + 1
    }

    /// Rebuild a network from the topology plus the exact flattened
    /// parameter vector produced by [`Mlp::flat_weights`]. The inverse of
    /// that export: `from_flat_weights(m.num_inputs(), m.num_hidden(),
    /// &m.flat_weights())` reproduces `m` bit for bit, so a persisted model
    /// predicts bitwise-identically to the one that was trained.
    ///
    /// Returns `None` when `flat.len()` disagrees with the topology.
    pub fn from_flat_weights(inputs: usize, hidden: usize, flat: &[f64]) -> Option<Self> {
        if flat.len() != Self::param_count(inputs, hidden) {
            return None;
        }
        let mut it = flat.iter().copied();
        let mut take = |n: usize| -> Vec<f64> { it.by_ref().take(n).collect() };
        let w: Vec<Vec<f64>> = (0..hidden).map(|_| take(inputs)).collect();
        let b = take(hidden);
        let v = take(if hidden == 0 { inputs } else { hidden });
        let a = it.next().expect("length checked above");
        Some(Mlp { w, b, v, a, inputs })
    }

    fn new_random(inputs: usize, hidden: usize, rng: &mut Pcg32) -> Self {
        let scale = 1.0 / (inputs.max(1) as f64).sqrt();
        let mut weight = |n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        let w: Vec<Vec<f64>> = (0..hidden).map(|_| weight(inputs)).collect();
        let b = weight(hidden);
        let v = weight(if hidden == 0 { inputs } else { hidden });
        let a = 0.0;
        Mlp {
            w,
            b,
            v,
            a,
            inputs,
        }
    }

    /// The network's estimate of the probability that the branch is taken,
    /// in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.inputs, "input dimensionality mismatch");
        let (y, _) = self.forward(x);
        y
    }

    /// Hard taken/not-taken decision at the paper's 0.5 threshold.
    pub fn predict_taken(&self, x: &[f64]) -> bool {
        self.predict(x) > 0.5
    }

    /// Forward pass returning `(y, hidden activations)`.
    fn forward(&self, x: &[f64]) -> (f64, Vec<f64>) {
        if self.w.is_empty() {
            let z: f64 = self.v.iter().zip(x).map(|(v, x)| v * x).sum::<f64>() + self.a;
            return (0.5 * z.tanh() + 0.5, Vec::new());
        }
        let h: Vec<f64> = self
            .w
            .iter()
            .zip(&self.b)
            .map(|(wi, bi)| {
                let s: f64 = wi.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + bi;
                s.tanh()
            })
            .collect();
        let z: f64 = self.v.iter().zip(&h).map(|(v, h)| v * h).sum::<f64>() + self.a;
        (0.5 * z.tanh() + 0.5, h)
    }

    /// The continuous misprediction-cost loss over a data set.
    pub fn loss(&self, data: &[TrainExample]) -> f64 {
        data.iter()
            .map(|ex| {
                let y = self.predict(&ex.x);
                ex.weight * (y * (1.0 - ex.target) + ex.target * (1.0 - y))
            })
            .sum()
    }

    /// The thresholded error: the same loss with `y` snapped to 0 or 1 —
    /// i.e. the weighted dynamic misprediction mass of the hard predictor.
    pub fn thresholded_error(&self, data: &[TrainExample]) -> f64 {
        data.iter()
            .map(|ex| {
                let y = if self.predict(&ex.x) > 0.5 { 1.0 } else { 0.0 };
                ex.weight * (y * (1.0 - ex.target) + ex.target * (1.0 - y))
            })
            .sum()
    }

    /// Serially accumulate the gradient of one chunk of examples, in example
    /// order; returns the chunk's continuous loss. This is the reference
    /// accumulator: the parallel path below applies it per chunk and merges
    /// the partials in a fixed order.
    fn chunk_gradient(&self, data: &[TrainExample], kind: LossKind, grad: &mut Gradients) -> f64 {
        grad.zero();
        let mut loss = 0.0;
        for ex in data {
            let (y, h) = self.forward(&ex.x);
            // dE/dy;  y = ½ tanh(z) + ½  ⇒ dy/dz = ½(1 - tanh²z)
            let dedy = match kind {
                LossKind::Linear => {
                    loss += ex.weight * (y * (1.0 - ex.target) + ex.target * (1.0 - y));
                    ex.weight * (1.0 - 2.0 * ex.target)
                }
                LossKind::Sse => {
                    let d = y - ex.target;
                    loss += ex.weight * d * d;
                    ex.weight * 2.0 * d
                }
            };
            let tanh_z = 2.0 * y - 1.0;
            let dz = dedy * 0.5 * (1.0 - tanh_z * tanh_z);
            if self.w.is_empty() {
                for (gv, x) in grad.v.iter_mut().zip(&ex.x) {
                    *gv += dz * x;
                }
                grad.a += dz;
                continue;
            }
            for i in 0..self.w.len() {
                grad.v[i] += dz * h[i];
                let dh = dz * self.v[i] * (1.0 - h[i] * h[i]);
                grad.b[i] += dh;
                for (gw, x) in grad.w[i].iter_mut().zip(&ex.x) {
                    *gw += dh * x;
                }
            }
            grad.a += dz;
        }
        loss
    }

    /// Compute the full batch gradient into `bufs[0]` and return the epoch
    /// loss. `bufs` holds one reusable buffer per fixed-size chunk; chunk
    /// partials are computed on `threads` workers and merged by an ordered
    /// pairwise (stride-doubling) reduction. Chunk boundaries and reduction
    /// shape depend only on `data.len()`, never on `threads`, so the result
    /// is bitwise identical for every thread count.
    fn batch_gradient(
        &self,
        data: &[TrainExample],
        kind: LossKind,
        bufs: &mut [Gradients],
        losses: &mut [f64],
        threads: usize,
    ) -> f64 {
        let k = bufs.len();
        debug_assert_eq!(k, data.len().div_ceil(GRAD_CHUNK));
        parallel_drain(
            threads.min(k),
            bufs.iter_mut()
                .zip(losses.iter_mut())
                .zip(data.chunks(GRAD_CHUNK)),
            |((grad, loss), chunk)| {
                *loss = self.chunk_gradient(chunk, kind, grad);
            },
        );
        // Ordered pairwise reduction, same shape as `esp_runtime::tree_reduce`
        // but merging in place so the per-chunk buffers can be reused across
        // epochs: partials meet as ((c0 c1)(c2 c3))… regardless of which
        // worker produced them.
        let mut stride = 1;
        while stride < k {
            let mut i = 0;
            while i + stride < k {
                let (head, tail) = bufs.split_at_mut(i + stride);
                head[i].add_assign(&tail[0]);
                losses[i] += losses[i + stride];
                i += 2 * stride;
            }
            stride *= 2;
        }
        losses[0]
    }

    fn apply(&mut self, grad: &Gradients, lr: f64) {
        for (wi, gi) in self.w.iter_mut().zip(&grad.w) {
            for (w, g) in wi.iter_mut().zip(gi) {
                *w -= lr * g;
            }
        }
        for (b, g) in self.b.iter_mut().zip(&grad.b) {
            *b -= lr * g;
        }
        for (v, g) in self.v.iter_mut().zip(&grad.v) {
            *v -= lr * g;
        }
        self.a -= lr * grad.a;
    }

    /// Train a network on `data` with the paper's procedure (batch descent,
    /// adaptive learning rate, early stopping on thresholded error), over
    /// `cfg.restarts` independent initialisations. Returns the weights that
    /// achieved the best thresholded error across all restarts.
    ///
    /// Restarts run concurrently on `cfg.threads` workers (each restart is a
    /// pure function of its seed), and leftover workers parallelise each
    /// restart's gradient chunks. The winner is selected in restart order
    /// with a strict `<`, so the outcome is identical to the serial sweep.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or examples disagree on dimensionality.
    pub fn train(data: &[TrainExample], cfg: &MlpConfig) -> (Mlp, TrainReport) {
        assert!(!data.is_empty(), "cannot train on an empty corpus");
        let inputs = data[0].x.len();
        assert!(
            data.iter().all(|d| d.x.len() == inputs),
            "inconsistent feature dimensionality"
        );
        let restarts = cfg.restarts.max(1);
        let _sp = span!(
            "train",
            "train",
            examples = data.len(),
            restarts = restarts,
            hidden = cfg.hidden,
        );
        esp_obs::global_metrics()
            .counter("esp_train_restarts_total")
            .add(restarts as u64);
        let total = resolve_threads(cfg.threads);
        let concurrent = total.min(restarts);
        let chunk_threads = (total / concurrent).max(1);
        let results = parallel_map_indices(concurrent, restarts, |r| {
            Mlp::train_once(
                data,
                cfg,
                cfg.seed.wrapping_add(r as u64),
                inputs,
                chunk_threads,
                r,
            )
        });
        let mut outcome: Option<(Mlp, TrainReport)> = None;
        for (m, rep) in results {
            let better = outcome
                .as_ref()
                .is_none_or(|(_, b)| rep.best_thresholded_error < b.best_thresholded_error);
            if better {
                outcome = Some((m, rep));
            }
        }
        outcome.expect("at least one restart ran")
    }

    fn train_once(
        data: &[TrainExample],
        cfg: &MlpConfig,
        seed: u64,
        inputs: usize,
        threads: usize,
        restart: usize,
    ) -> (Mlp, TrainReport) {
        let mut restart_span = span!("train", "restart", restart = restart, seed = seed);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut mlp = Mlp::new_random(inputs, cfg.hidden, &mut rng);
        let num_chunks = data.len().div_ceil(GRAD_CHUNK);
        let mut bufs: Vec<Gradients> = (0..num_chunks).map(|_| Gradients::like(&mlp)).collect();
        let mut losses = vec![0.0; num_chunks];
        let mut lr = cfg.learning_rate;
        // Normalise the step by total example weight so hyper-parameters are
        // insensitive to corpus size.
        let total_weight: f64 = data.iter().map(|d| d.weight).sum::<f64>().max(1e-12);

        let mut best = mlp.clone();
        let mut best_terr = mlp.thresholded_error(data);
        let mut prev_loss = f64::INFINITY;
        let mut since_best = 0usize;
        let mut epochs = 0usize;
        let mut final_loss = 0.0;

        let mut stop_reason = "max_epochs";
        for epoch in 0..cfg.max_epochs {
            epochs = epoch + 1;
            let mut epoch_span = span!("train", "epoch", restart = restart, epoch = epoch);
            let loss = mlp.batch_gradient(data, cfg.loss, &mut bufs, &mut losses, threads);
            final_loss = loss;
            mlp.apply(&bufs[0], lr / total_weight);
            // Adaptive learning rate, no momentum (paper §3.1.1). Clamped so
            // a long run of improving epochs cannot blow the step size up.
            lr *= if loss < prev_loss { cfg.lr_up } else { cfg.lr_down };
            lr = lr.clamp(1e-5, 40.0 * cfg.learning_rate);
            prev_loss = loss;

            let terr = mlp.thresholded_error(data);
            if epoch_span.is_enabled() {
                epoch_span.arg("loss", loss);
                epoch_span.arg("lr", lr);
                epoch_span.arg("terr", terr);
            }
            if terr < best_terr - 1e-12 {
                best_terr = terr;
                best = mlp.clone();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    stop_reason = "patience";
                    break;
                }
            }
        }
        let m = esp_obs::global_metrics();
        m.counter("esp_train_epochs_total").add(epochs as u64);
        m.counter(if stop_reason == "patience" {
            "esp_train_stop_patience_total"
        } else {
            "esp_train_stop_max_epochs_total"
        })
        .inc();
        if restart_span.is_enabled() {
            restart_span.arg("epochs", epochs);
            restart_span.arg("stop", stop_reason);
            restart_span.arg("best_terr", best_terr);
        }

        (
            best,
            TrainReport {
                epochs,
                final_loss,
                best_thresholded_error: best_terr,
            },
        )
    }
}

struct Gradients {
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
    v: Vec<f64>,
    a: f64,
}

impl Gradients {
    fn like(m: &Mlp) -> Self {
        Gradients {
            w: m.w.iter().map(|r| vec![0.0; r.len()]).collect(),
            b: vec![0.0; m.b.len()],
            v: vec![0.0; m.v.len()],
            a: 0.0,
        }
    }

    fn zero(&mut self) {
        for r in &mut self.w {
            r.fill(0.0);
        }
        self.b.fill(0.0);
        self.v.fill(0.0);
        self.a = 0.0;
    }

    fn add_assign(&mut self, other: &Gradients) {
        for (wi, oi) in self.w.iter_mut().zip(&other.w) {
            for (w, o) in wi.iter_mut().zip(oi) {
                *w += o;
            }
        }
        for (b, o) in self.b.iter_mut().zip(&other.b) {
            *b += o;
        }
        for (v, o) in self.v.iter_mut().zip(&other.v) {
            *v += o;
        }
        self.a += other.a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Vec<TrainExample> {
        let mut out = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let t = if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 };
            // replicate to give batch descent something to chew on
            for _ in 0..8 {
                out.push(TrainExample {
                    x: vec![a * 2.0 - 1.0, b * 2.0 - 1.0],
                    target: t,
                    weight: 1.0,
                });
            }
        }
        out
    }

    #[test]
    fn output_is_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(1);
        let m = Mlp::new_random(5, 7, &mut rng);
        for i in 0..50 {
            let x: Vec<f64> = (0..5).map(|j| ((i * 7 + j) as f64).sin() * 3.0).collect();
            let y = m.predict(&x);
            assert!((0.0..=1.0).contains(&y), "y = {y}");
        }
        assert_eq!(m.num_inputs(), 5);
        assert_eq!(m.num_hidden(), 7);
        assert_eq!(m.num_params(), 5 * 7 + 7 + 7 + 1);
    }

    #[test]
    fn learns_xor_with_sse_loss() {
        let data = xor_data();
        let cfg = MlpConfig {
            hidden: 8,
            loss: LossKind::Sse,
            restarts: 1,
            max_epochs: 5000,
            patience: 1000,
            learning_rate: 0.5,
            seed: 42,
            ..MlpConfig::default()
        };
        let (m, report) = Mlp::train(&data, &cfg);
        assert!(
            report.best_thresholded_error < 1e-9,
            "xor not learned: terr = {}",
            report.best_thresholded_error
        );
        assert!(m.predict(&[-1.0, 1.0]) > 0.5);
        assert!(m.predict(&[1.0, 1.0]) < 0.5);
    }

    #[test]
    fn restarts_never_hurt() {
        let data = xor_data();
        let base = MlpConfig {
            hidden: 8,
            max_epochs: 800,
            patience: 200,
            learning_rate: 0.3,
            seed: 1,
            ..MlpConfig::default()
        };
        let (_, one) = Mlp::train(
            &data,
            &MlpConfig {
                restarts: 1,
                ..base.clone()
            },
        );
        let (_, many) = Mlp::train(
            &data,
            &MlpConfig {
                restarts: 6,
                ..base
            },
        );
        assert!(many.best_thresholded_error <= one.best_thresholded_error);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data: Vec<TrainExample> = (0..10)
            .map(|i| TrainExample {
                x: vec![(i as f64) / 5.0 - 1.0, ((i * 3) % 7) as f64 / 3.0 - 1.0],
                target: ((i % 3) as f64) / 2.0,
                weight: 0.5 + (i as f64) / 10.0,
            })
            .collect();
        let mut rng = Pcg32::seed_from_u64(9);
        let m = Mlp::new_random(2, 3, &mut rng);
        let mut grad = Gradients::like(&m);
        m.chunk_gradient(&data, LossKind::Linear, &mut grad);

        let eps = 1e-6;
        // check a few representative parameters
        let checks: Vec<(f64, Box<dyn Fn(&mut Mlp, f64)>)> = vec![
            (grad.w[1][0], Box::new(|m: &mut Mlp, d: f64| m.w[1][0] += d)),
            (grad.b[2], Box::new(|m: &mut Mlp, d: f64| m.b[2] += d)),
            (grad.v[0], Box::new(|m: &mut Mlp, d: f64| m.v[0] += d)),
            (grad.a, Box::new(|m: &mut Mlp, d: f64| m.a += d)),
        ];
        for (analytic, perturb) in checks {
            let mut mp = m.clone();
            perturb(&mut mp, eps);
            let mut mm = m.clone();
            perturb(&mut mm, -eps);
            let numeric = (mp.loss(&data) - mm.loss(&data)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "gradient mismatch: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn weighting_shifts_the_decision() {
        // Contradictory labels for the same input; the heavier side must win.
        let data = vec![
            TrainExample {
                x: vec![1.0],
                target: 1.0,
                weight: 10.0,
            },
            TrainExample {
                x: vec![1.0],
                target: 0.0,
                weight: 1.0,
            },
        ];
        let (m, _) = Mlp::train(
            &data,
            &MlpConfig {
                hidden: 2,
                seed: 3,
                ..MlpConfig::default()
            },
        );
        assert!(m.predict(&[1.0]) > 0.5, "heavy taken side must dominate");
    }

    #[test]
    fn zero_hidden_is_a_linear_model() {
        let mut rng = Pcg32::seed_from_u64(4);
        let m = Mlp::new_random(3, 0, &mut rng);
        assert_eq!(m.num_hidden(), 0);
        assert_eq!(m.num_params(), 3 + 1);
        let y = m.predict(&[0.1, -0.2, 0.3]);
        assert!((0.0..=1.0).contains(&y));
        // still trainable
        let data: Vec<TrainExample> = (0..20)
            .map(|i| {
                let x = (i as f64) / 10.0 - 1.0;
                TrainExample {
                    x: vec![x, 0.0, 0.0],
                    target: if x > 0.0 { 1.0 } else { 0.0 },
                    weight: 1.0,
                }
            })
            .collect();
        let (m, r) = Mlp::train(
            &data,
            &MlpConfig {
                hidden: 0,
                seed: 4,
                max_epochs: 500,
                ..MlpConfig::default()
            },
        );
        assert!(r.best_thresholded_error < 1e-9);
        assert!(m.predict(&[0.8, 0.0, 0.0]) > 0.5);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let data = xor_data();
        let cfg = MlpConfig {
            hidden: 4,
            max_epochs: 50,
            seed: 11,
            ..MlpConfig::default()
        };
        let (m1, r1) = Mlp::train(&data, &cfg);
        let (m2, r2) = Mlp::train(&data, &cfg);
        assert_eq!(r1, r2);
        assert_eq!(m1.predict(&[0.3, -0.4]), m2.predict(&[0.3, -0.4]));
    }

    /// Data big enough for several gradient chunks, varied enough that every
    /// parameter's gradient is nonzero.
    fn chunky_data(n: usize) -> Vec<TrainExample> {
        (0..n)
            .map(|i| TrainExample {
                x: vec![
                    ((i * 13) % 29) as f64 / 14.0 - 1.0,
                    ((i * 7) % 23) as f64 / 11.0 - 1.0,
                    ((i * 31) % 17) as f64 / 8.0 - 1.0,
                ],
                target: ((i * 11) % 10) as f64 / 9.0,
                weight: 0.2 + ((i * 3) % 7) as f64 / 5.0,
            })
            .collect()
    }

    #[test]
    fn chunked_gradient_matches_serial_accumulator() {
        // The chunked, tree-reduced gradient must agree with the plain
        // serial accumulator (one chunk spanning all data) up to float
        // reassociation noise.
        let data = chunky_data(GRAD_CHUNK * 3 + 17);
        let mut rng = Pcg32::seed_from_u64(21);
        let m = Mlp::new_random(3, 5, &mut rng);

        let mut serial = Gradients::like(&m);
        let serial_loss = m.chunk_gradient(&data, LossKind::Linear, &mut serial);

        let k = data.len().div_ceil(GRAD_CHUNK);
        let mut bufs: Vec<Gradients> = (0..k).map(|_| Gradients::like(&m)).collect();
        let mut losses = vec![0.0; k];
        let chunked_loss = m.batch_gradient(&data, LossKind::Linear, &mut bufs, &mut losses, 1);

        assert!((serial_loss - chunked_loss).abs() < 1e-9);
        for (s, c) in serial.v.iter().zip(&bufs[0].v) {
            assert!((s - c).abs() < 1e-9, "v gradient diverged: {s} vs {c}");
        }
        for (sr, cr) in serial.w.iter().zip(&bufs[0].w) {
            for (s, c) in sr.iter().zip(cr) {
                assert!((s - c).abs() < 1e-9, "w gradient diverged: {s} vs {c}");
            }
        }
        assert!((serial.a - bufs[0].a).abs() < 1e-9);
    }

    #[test]
    fn chunked_gradient_is_bitwise_identical_across_thread_counts() {
        let data = chunky_data(GRAD_CHUNK * 5 + 3);
        let mut rng = Pcg32::seed_from_u64(22);
        let m = Mlp::new_random(3, 6, &mut rng);
        let k = data.len().div_ceil(GRAD_CHUNK);

        let grad_bits = |threads: usize| -> (u64, Vec<u64>) {
            let mut bufs: Vec<Gradients> = (0..k).map(|_| Gradients::like(&m)).collect();
            let mut losses = vec![0.0; k];
            let loss = m.batch_gradient(&data, LossKind::Linear, &mut bufs, &mut losses, threads);
            let mut bits = vec![bufs[0].a.to_bits()];
            bits.extend(bufs[0].v.iter().map(|x| x.to_bits()));
            bits.extend(bufs[0].b.iter().map(|x| x.to_bits()));
            bits.extend(bufs[0].w.iter().flatten().map(|x| x.to_bits()));
            (loss.to_bits(), bits)
        };

        let reference = grad_bits(1);
        for threads in [2, 4, 8] {
            assert_eq!(grad_bits(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn training_is_bitwise_identical_across_thread_counts() {
        let data = chunky_data(GRAD_CHUNK * 2 + 9);
        let base = MlpConfig {
            hidden: 5,
            restarts: 3,
            max_epochs: 40,
            patience: 40,
            seed: 77,
            ..MlpConfig::default()
        };
        let (m1, r1) = Mlp::train(&data, &MlpConfig { threads: 1, ..base.clone() });
        for threads in [2, 4] {
            let (mt, rt) = Mlp::train(&data, &MlpConfig { threads, ..base.clone() });
            assert_eq!(r1, rt, "threads={threads} report diverged");
            let b1: Vec<u64> = m1.flat_weights().iter().map(|x| x.to_bits()).collect();
            let bt: Vec<u64> = mt.flat_weights().iter().map(|x| x.to_bits()).collect();
            assert_eq!(b1, bt, "threads={threads} weights diverged");
        }
    }

    #[test]
    fn flat_weights_round_trip_bitwise() {
        for hidden in [0, 5] {
            let mut rng = Pcg32::seed_from_u64(31);
            let m = Mlp::new_random(4, hidden, &mut rng);
            let flat = m.flat_weights();
            assert_eq!(flat.len(), Mlp::param_count(4, hidden));
            let back = Mlp::from_flat_weights(4, hidden, &flat).expect("valid length");
            assert_eq!(back, m);
            let x = [0.3, -1.2, 0.9, 0.05];
            assert_eq!(back.predict(&x).to_bits(), m.predict(&x).to_bits());
            assert!(Mlp::from_flat_weights(4, hidden, &flat[1..]).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_training_set_rejected() {
        let _ = Mlp::train(&[], &MlpConfig::default());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_rejected() {
        let data = vec![TrainExample {
            x: vec![0.0, 1.0],
            target: 1.0,
            weight: 1.0,
        }];
        let (m, _) = Mlp::train(
            &data,
            &MlpConfig {
                hidden: 2,
                max_epochs: 1,
                ..MlpConfig::default()
            },
        );
        let _ = m.predict(&[0.0]);
    }
}
