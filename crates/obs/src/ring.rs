//! The bounded per-thread trace ring buffer.
//!
//! One [`TraceRing`] belongs to exactly one producer thread; a drainer (any
//! thread holding the collector's registry lock) consumes from the other
//! end. The index protocol is single-producer / single-consumer:
//!
//! * the producer owns `tail`: it writes the slot at `tail % cap`, then
//!   publishes it with a `Release` store of `tail + 1`;
//! * the consumer owns `head`: it loads `tail` with `Acquire`, takes every
//!   slot in `[head, tail)`, then frees them with a `Release` store of
//!   `head = tail`.
//!
//! The ranges a producer writes and a consumer reads are disjoint by
//! construction (the producer only touches index `tail`, the consumer only
//! indices below the `tail` it observed), so no slot is ever accessed from
//! two threads at once. Each slot still sits behind a `Mutex` to keep the
//! crate free of `unsafe`; by the protocol above those locks are always
//! uncontended, so the push fast path is one uncontended lock plus two
//! atomic index operations — the producer never blocks on the drainer.
//!
//! When the ring is full the producer **drops the event and counts it**
//! rather than waiting: observation must never stall the pipeline. Dropped
//! counts are reported by [`crate::trace::dropped`] so a truncated trace is
//! visible instead of silent.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::trace::TraceEvent;

/// Default events per thread before the ring starts dropping.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A bounded single-producer / single-consumer event ring.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    /// Consumer cursor: everything below it has been drained.
    head: AtomicUsize,
    /// Producer cursor: everything below it is published.
    tail: AtomicUsize,
    dropped: AtomicU64,
    tid: u64,
}

impl TraceRing {
    /// An empty ring of `capacity` slots for thread `tid`.
    pub fn new(tid: u64, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// The thread id this ring records for.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Append one event (producer side). Returns `false` — and counts the
    /// event as dropped — when the ring is full. Never blocks on a drain.
    pub fn push(&self, event: TraceEvent) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        *self.slots[tail % self.slots.len()]
            .lock()
            .expect("ring slot poisoned") = Some(event);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Take every published event, in push order (consumer side).
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            let ev = self.slots[i % self.slots.len()]
                .lock()
                .expect("ring slot poisoned")
                .take()
                .expect("published slot holds an event");
            out.push(ev);
            i = i.wrapping_add(1);
        }
        self.head.store(tail, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArgValue, EventKind};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: "test",
            kind: EventKind::Instant,
            ts_us: seq,
            dur_us: 0,
            tid: 0,
            args: vec![("seq", ArgValue::U64(seq))],
        }
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let r = TraceRing::new(3, 8);
        for s in 0..5 {
            assert!(r.push(ev(s)));
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_us, i as u64);
        }
        assert_eq!(r.tid(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = TraceRing::new(0, 4);
        for s in 0..6 {
            r.push(ev(s));
        }
        assert_eq!(r.dropped(), 2);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 4, "first four kept, rest dropped");
        // drained slots are reusable
        assert!(r.push(ev(99)));
        let mut out2 = Vec::new();
        r.drain_into(&mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].ts_us, 99);
    }
}
