//! The 43 benchmarks and their personalities.

use esp_ir::{Lang, Program};
use esp_lang::{CompileError, CompilerConfig};

use crate::personality::Personality;
use crate::{gen_cee, gen_fort};

/// Which group of the paper's Table 3/4 a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// The non-SPEC C utilities ("Other C": bc … yacr).
    OtherC,
    /// SPEC92 C programs.
    SpecC,
    /// SPEC92 Fortran programs.
    SpecFortran,
    /// Perfect Club Fortran programs.
    PerfectClub,
}

impl Group {
    /// Display label matching the paper's table footers.
    pub fn label(self) -> &'static str {
        match self {
            Group::OtherC => "Other C",
            Group::SpecC => "SPEC C",
            Group::SpecFortran => "SPEC Fortran",
            Group::PerfectClub => "Perf Club",
        }
    }
}

/// One benchmark of the corpus.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The paper's program name (e.g. `"tomcatv"`).
    pub name: &'static str,
    /// Source language.
    pub lang: Lang,
    /// Table group.
    pub group: Group,
    /// Generation knobs.
    pub personality: Personality,
}

impl Benchmark {
    /// Deterministically generate this benchmark's source text.
    pub fn source(&self) -> String {
        match self.lang {
            Lang::C => gen_cee::generate(self.name, &self.personality),
            Lang::Fort => gen_fort::generate(self.name, &self.personality),
        }
    }

    /// Generate and compile under `cfg`.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] here is a corpus-generator bug; the test suite
    /// compiles every benchmark under every configuration.
    pub fn compile(&self, cfg: &CompilerConfig) -> Result<Program, CompileError> {
        esp_lang::compile_source(self.name, &self.source(), self.lang, cfg)
    }
}

/// Shorthand constructor.
fn b(name: &'static str, lang: Lang, group: Group, personality: Personality) -> Benchmark {
    Benchmark {
        name,
        lang,
        group,
        personality,
    }
}

/// The full 43-program suite, in the paper's Table 3 order: 15 "Other C",
/// 8 SPEC C, 11 SPEC Fortran, 9 Perfect Club.
///
/// Personalities are tuned from Table 3: long-trip loop programs for the
/// high %taken entries (`alvinn` 97.8%, `tomcatv` 99.3%, `swm256` 98.4%),
/// noisy/branchy mixes for the low ones (`perl` 39.9%, `bc` 42.4%,
/// `doduc` 48.7%), pointer-heavy mixes for the interpreters (`li`, `siod`,
/// `perl`), float-dominated mixes for the numeric codes.
pub fn suite() -> Vec<Benchmark> {
    use Group::*;
    use Lang::{Fort, C};
    let d = Personality::default;
    vec![
        // ----- Other C ----------------------------------------------------
        b("bc", C, OtherC, Personality { funcs: 16, loop_trip: 10, noise_weight: 5, switch_weight: 2, ..d() }),
        b("bison", C, OtherC, Personality { funcs: 18, loop_trip: 60, switch_weight: 3, ..d() }),
        b("burg", C, OtherC, Personality { funcs: 14, loop_trip: 25, rec_weight: 3, noise_weight: 3, ..d() }),
        b("flex", C, OtherC, Personality { funcs: 18, loop_trip: 45, switch_weight: 3, noise_weight: 2, ..d() }),
        b("grep", C, OtherC, Personality { funcs: 11, loop_trip: 55, noise_weight: 2, error_rarity: 24, ..d() }),
        b("gzip", C, OtherC, Personality { funcs: 13, loop_trip: 30, noise_weight: 4, ptr_weight: 1, ..d() }),
        b("indent", C, OtherC, Personality { funcs: 14, loop_trip: 18, noise_weight: 3, switch_weight: 2, ..d() }),
        b("od", C, OtherC, Personality { funcs: 11, loop_trip: 12, noise_weight: 5, ..d() }),
        b("perl", C, OtherC, Personality { funcs: 22, loop_trip: 8, ptr_weight: 4, switch_weight: 3, rec_weight: 2, noise_weight: 5, ..d() }),
        b("sed", C, OtherC, Personality { funcs: 13, loop_trip: 50, noise_weight: 2, error_rarity: 20, ..d() }),
        b("siod", C, OtherC, Personality { funcs: 18, loop_trip: 14, ptr_weight: 5, rec_weight: 3, noise_weight: 3, ..d() }),
        b("sort", C, OtherC, Personality { funcs: 11, loop_trip: 35, noise_weight: 4, ..d() }),
        b("tex", C, OtherC, Personality { funcs: 23, loop_trip: 28, switch_weight: 2, noise_weight: 3, ..d() }),
        b("wdiff", C, OtherC, Personality { funcs: 9, loop_trip: 40, noise_weight: 3, ..d() }),
        b("yacr", C, OtherC, Personality { funcs: 13, loop_trip: 70, error_rarity: 128, ..d() }),
        // ----- SPEC C -----------------------------------------------------
        b("alvinn", C, SpecC, Personality { funcs: 9, main_iters: 12, loop_trip: 220, noise_weight: 0, float_weight: 4, ptr_weight: 0, switch_weight: 0, rec_weight: 0, error_rarity: 4096, ..d() }),
        b("compress", C, SpecC, Personality { funcs: 9, loop_trip: 45, noise_weight: 3, ptr_weight: 1, ..d() }),
        b("ear", C, SpecC, Personality { funcs: 9, main_iters: 14, loop_trip: 150, float_weight: 4, noise_weight: 1, ptr_weight: 0, ..d() }),
        b("eqntott", C, SpecC, Personality { funcs: 9, loop_trip: 160, noise_weight: 1, error_rarity: 512, ..d() }),
        b("espresso", C, SpecC, Personality { funcs: 20, loop_trip: 35, noise_weight: 3, switch_weight: 1, ..d() }),
        b("gcc", C, SpecC, Personality { funcs: 29, loop_trip: 20, switch_weight: 3, ptr_weight: 3, rec_weight: 2, noise_weight: 3, ..d() }),
        b("li", C, SpecC, Personality { funcs: 18, loop_trip: 10, ptr_weight: 5, rec_weight: 4, noise_weight: 4, ..d() }),
        b("sc", C, SpecC, Personality { funcs: 16, loop_trip: 45, switch_weight: 2, noise_weight: 2, ..d() }),
        // ----- SPEC Fortran -----------------------------------------------
        b("doduc", Fort, SpecFortran, Personality { funcs: 18, loop_trip: 12, noise_weight: 5, float_weight: 4, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("fpppp", Fort, SpecFortran, Personality { funcs: 14, loop_trip: 8, noise_weight: 6, float_weight: 6, ptr_weight: 0, switch_weight: 0, rec_weight: 0, ..d() }),
        b("hydro2d", Fort, SpecFortran, Personality { funcs: 13, loop_trip: 80, float_weight: 4, noise_weight: 1, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("mdljsp2", Fort, SpecFortran, Personality { funcs: 11, loop_trip: 90, float_weight: 3, noise_weight: 2, error_rarity: 12, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("nasa7", Fort, SpecFortran, Personality { funcs: 13, main_iters: 12, loop_trip: 110, float_weight: 4, noise_weight: 1, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("ora", Fort, SpecFortran, Personality { funcs: 9, loop_trip: 30, float_weight: 5, noise_weight: 4, ptr_weight: 0, switch_weight: 0, rec_weight: 0, ..d() }),
        b("spice", Fort, SpecFortran, Personality { funcs: 22, loop_trip: 60, float_weight: 3, noise_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("su2cor", Fort, SpecFortran, Personality { funcs: 13, loop_trip: 70, float_weight: 4, noise_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("swm256", Fort, SpecFortran, Personality { funcs: 9, main_iters: 10, loop_trip: 250, float_weight: 5, noise_weight: 0, error_rarity: 8192, ptr_weight: 0, switch_weight: 0, rec_weight: 0, ..d() }),
        b("tomcatv", Fort, SpecFortran, Personality { funcs: 9, main_iters: 10, loop_trip: 230, float_weight: 6, noise_weight: 0, error_rarity: 4096, ptr_weight: 0, switch_weight: 0, rec_weight: 0, ..d() }),
        b("wave5", Fort, SpecFortran, Personality { funcs: 16, loop_trip: 40, float_weight: 3, noise_weight: 3, ptr_weight: 0, switch_weight: 0, ..d() }),
        // ----- Perfect Club -----------------------------------------------
        b("APS", Fort, PerfectClub, Personality { funcs: 16, loop_trip: 15, noise_weight: 4, float_weight: 3, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("CSS", Fort, PerfectClub, Personality { funcs: 16, loop_trip: 20, noise_weight: 3, float_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("LWS", Fort, PerfectClub, Personality { funcs: 11, loop_trip: 55, float_weight: 4, noise_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("NAS", Fort, PerfectClub, Personality { funcs: 13, loop_trip: 45, float_weight: 4, noise_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("OCS", Fort, PerfectClub, Personality { funcs: 11, main_iters: 12, loop_trip: 130, float_weight: 4, noise_weight: 1, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("SDS", Fort, PerfectClub, Personality { funcs: 14, loop_trip: 18, noise_weight: 4, float_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("TFS", Fort, PerfectClub, Personality { funcs: 13, loop_trip: 85, float_weight: 3, noise_weight: 1, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("TIS", Fort, PerfectClub, Personality { funcs: 11, loop_trip: 14, noise_weight: 5, float_weight: 2, ptr_weight: 0, switch_weight: 0, ..d() }),
        b("WSS", Fort, PerfectClub, Personality { funcs: 14, loop_trip: 35, noise_weight: 2, float_weight: 3, ptr_weight: 0, switch_weight: 0, ..d() }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_matches_paper() {
        let s = suite();
        assert_eq!(s.len(), 43);
        assert_eq!(s.iter().filter(|b| b.lang == Lang::C).count(), 23);
        assert_eq!(s.iter().filter(|b| b.lang == Lang::Fort).count(), 20);
        assert_eq!(s.iter().filter(|b| b.group == Group::OtherC).count(), 15);
        assert_eq!(s.iter().filter(|b| b.group == Group::SpecC).count(), 8);
        assert_eq!(s.iter().filter(|b| b.group == Group::SpecFortran).count(), 11);
        assert_eq!(s.iter().filter(|b| b.group == Group::PerfectClub).count(), 9);
        // names unique
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 43);
        // Fortran programs use no pointers
        for bench in s.iter().filter(|b| b.lang == Lang::Fort) {
            assert_eq!(bench.personality.ptr_weight, 0, "{}", bench.name);
        }
        assert_eq!(Group::OtherC.label(), "Other C");
    }

    #[test]
    fn generation_is_deterministic() {
        let s = suite();
        assert_eq!(s[0].source(), s[0].source());
        assert_eq!(s[30].source(), s[30].source());
    }
}
