//! Randomized tests for the interpreter: determinism, profile accounting
//! invariants, and limit behaviour, over randomly generated (terminating)
//! programs drawn from the in-tree seeded PCG32 stream.

use esp_exec::{run, ExecLimits, Value};
use esp_ir::{
    AluOp, BlockId, BranchOp, CmpOp, FuncId, FunctionBuilder, Isa, Lang, Program, Reg,
};
use esp_runtime::Pcg32;

const CASES: u64 = 64;

/// A random but always-terminating program: a counted loop whose body is a
/// random arithmetic schedule over a small register file, with a random
/// data-dependent branch inside.
#[derive(Debug, Clone)]
struct Spec {
    trip: u8,
    ops: Vec<(u8, u8, u8, u8)>, // (op selector, dst, a, b) over 4 scratch regs
    branch_mod: u8,
}

fn random_spec(rng: &mut Pcg32) -> Spec {
    let trip = rng.gen_range(0..40u32) as u8;
    let n_ops = rng.gen_range(0..8usize);
    let ops = (0..n_ops)
        .map(|_| {
            (
                rng.gen_range(0..6u32) as u8,
                rng.gen_range(0..4u32) as u8,
                rng.gen_range(0..4u32) as u8,
                rng.gen_range(0..4u32) as u8,
            )
        })
        .collect();
    let branch_mod = rng.gen_range(1..7u32) as u8;
    Spec {
        trip,
        ops,
        branch_mod,
    }
}

fn for_random_specs(base_seed: u64, mut check: impl FnMut(&Spec)) {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(base_seed.wrapping_add(case));
        check(&random_spec(&mut rng));
    }
}

fn build(spec: &Spec) -> Program {
    let mut b = FunctionBuilder::new("main", 0, Lang::C);
    let scratch: Vec<Reg> = (0..4).map(|_| b.fresh_reg()).collect();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let t = b.fresh_reg();

    let entry = b.entry_block();
    for (k, r) in scratch.iter().enumerate() {
        b.push_load_imm(entry, *r, k as i64 + 1);
    }
    b.push_load_imm(entry, i, 0);
    let head = b.new_block();
    let body = b.new_block();
    let then_blk = b.new_block();
    let join = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.set_fallthrough(entry, head);
    b.push_cmp_imm(head, CmpOp::Lt, c, i, spec.trip as i64);
    b.set_cond_branch(head, BranchOp::Bne, c, None, body, exit);
    for (op, dst, x, y) in &spec.ops {
        let alu = match op % 6 {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Div,
            4 => AluOp::Rem,
            _ => AluOp::Xor,
        };
        b.push_alu(
            body,
            alu,
            scratch[*dst as usize],
            scratch[*x as usize],
            scratch[*y as usize],
        );
    }
    // data-dependent branch: if (s0 % m == 0) s1 += 3
    b.push_alu_imm(body, AluOp::Rem, t, scratch[0], spec.branch_mod as i64);
    b.set_cond_branch(body, BranchOp::Beq, t, None, then_blk, join);
    b.push_alu_imm(then_blk, AluOp::Add, scratch[1], scratch[1], 3);
    b.set_fallthrough(then_blk, join);
    b.set_jump(join, latch);
    b.push_alu_imm(latch, AluOp::Add, i, i, 1);
    b.set_jump(latch, head);
    b.set_return(exit, Some(scratch[1]));

    Program {
        name: "prop".into(),
        funcs: vec![b.finish()],
        main: FuncId(0),
        isa: Isa::Alpha,
    }
}

#[test]
fn execution_is_deterministic() {
    for_random_specs(0xDE7E, |s| {
        let prog = build(s);
        let a = run(&prog, &ExecLimits::default()).expect("terminates");
        let b = run(&prog, &ExecLimits::default()).expect("terminates");
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.profile.dyn_insns, b.profile.dyn_insns);
        let pa: Vec<_> = a.profile.iter().map(|(s, c)| (*s, *c)).collect();
        let pb: Vec<_> = b.profile.iter().map(|(s, c)| (*s, *c)).collect();
        assert_eq!(pa, pb);
    });
}

#[test]
fn profile_accounting_invariants() {
    for_random_specs(0xACC0, |s| {
        let prog = build(s);
        let out = run(&prog, &ExecLimits::default()).expect("terminates");
        let p = &out.profile;
        let mut total = 0u64;
        for (site, c) in p.iter() {
            assert!(c.taken <= c.executed, "{site}: taken > executed");
            assert!(c.executed > 0);
            total += c.executed;
        }
        assert_eq!(total, p.dyn_cond_branches);
        // loop head executed trip+1 times when the loop ran
        let head_site = prog
            .branch_sites()
            .into_iter()
            .find(|b| b.block == BlockId(1))
            .expect("head branch");
        let c = p.counts(head_site).expect("head executed");
        assert_eq!(c.executed, s.trip as u64 + 1);
        assert_eq!(c.taken, s.trip as u64);
        // weights sum to 1 over executed sites
        let wsum: f64 = prog.branch_sites().iter().map(|s| p.weight(*s)).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weights sum to {wsum}");
    });
}

#[test]
fn tighter_insn_limits_never_change_results_only_truncate() {
    for_random_specs(0x1131, |s| {
        let prog = build(s);
        let full = run(&prog, &ExecLimits::default()).expect("terminates");
        let limits = ExecLimits {
            max_insns: full.profile.dyn_insns,
            ..ExecLimits::default()
        };
        // a budget exactly equal to the need still succeeds (checked at
        // block granularity, so the final block fits)
        let again = run(&prog, &limits).expect("same budget suffices");
        assert_eq!(again.ret, full.ret);
        if full.profile.dyn_insns > 40 {
            let tight = ExecLimits {
                max_insns: 10,
                ..ExecLimits::default()
            };
            let err = run(&prog, &tight).unwrap_err();
            let is_limit = matches!(err, esp_exec::ExecError::InsnLimit { .. });
            assert!(is_limit, "expected InsnLimit, got {err:?}");
        }
    });
}

#[test]
fn values_round_trip() {
    let mut rng = Pcg32::seed_from_u64(0x0a1b);
    for _ in 0..CASES {
        let v = rng.next_u64() as i64;
        assert_eq!(Value::from(v).as_int().unwrap(), v);
        let f = f64::from_bits(rng.next_u64());
        let vf = Value::from(f).as_float().unwrap();
        assert!(vf == f || (vf.is_nan() && f.is_nan()));
    }
    // the edge cases any::<f64>() used to find
    for f in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
        let vf = Value::from(f).as_float().unwrap();
        assert!(vf == f || (vf.is_nan() && f.is_nan()));
    }
}
