//! Structural validation of every corpus generator under *every* compiler
//! configuration. `suite_integrity` already validates the two reference
//! configurations and executes them; this test is the cheap wide net — the
//! IR validator must accept all 43 programs under all six pass mixes,
//! since downstream analyses (esp-analyze, the linter, feature extraction)
//! assume validator-clean input.

use esp_corpus::suite;
use esp_ir::validate_program;
use esp_lang::CompilerConfig;

#[test]
fn every_program_validates_under_every_config() {
    let configs = [
        CompilerConfig::o0(),
        CompilerConfig::cc_osf1_v12(),
        CompilerConfig::cc_osf1_v20(),
        CompilerConfig::gem(),
        CompilerConfig::gnu(),
        CompilerConfig::mips_ref(),
    ];
    let benches = suite();
    assert_eq!(benches.len(), 43, "the corpus is the paper's 43 programs");
    for cfg in &configs {
        for bench in &benches {
            let prog = bench
                .compile(cfg)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name, cfg.name));
            validate_program(&prog).unwrap_or_else(|e| {
                panic!("{} [{}]: invalid IR: {e}", bench.name, cfg.name)
            });
        }
    }
}
