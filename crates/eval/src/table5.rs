//! Table 5: detailed results for the heuristic approach — loop branches vs
//! non-loop branches, heuristic coverage, and the random-default accounting.

use esp_heur::{Aphc, BranchCtx, Heuristic};

use crate::data::{BenchData, SuiteData};
use crate::fmt::{pct, TextTable};

/// One program's Table 5 row (fractions, not percentages).
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Program name.
    pub name: String,
    /// Miss rate on loop branches (sites the Loop Branch heuristic covers).
    pub loop_miss: f64,
    /// Fraction of executed branches that are non-loop branches.
    pub pct_non_loop: f64,
    /// Of the non-loop executions, the fraction covered by some non-loop
    /// heuristic.
    pub coverage: f64,
    /// Miss rate of the heuristics on the covered non-loop executions.
    pub heur_miss: f64,
    /// Miss rate over all non-loop executions, uncovered ones scored as coin
    /// flips ("with default").
    pub nonloop_miss: f64,
    /// Overall miss rate (loop + non-loop), i.e. the APHC number.
    pub overall: f64,
}

/// Compute one program's row.
pub fn compute_one(b: &BenchData) -> Table5Row {
    let aphc = Aphc::table1_order();
    let mut loop_exec = 0u64;
    let mut loop_miss = 0.0f64;
    let mut nl_exec = 0u64;
    let mut nl_cov_exec = 0u64;
    let mut nl_cov_miss = 0.0f64;

    for site in b.prog.branch_sites() {
        let Some(c) = b.profile.counts(site) else {
            continue;
        };
        let ctx = BranchCtx::new(&b.prog, &b.analysis, site);
        if let Some(pred) = Heuristic::LoopBranch.predict(&ctx) {
            loop_exec += c.executed;
            loop_miss += if pred {
                (c.executed - c.taken) as f64
            } else {
                c.taken as f64
            };
            continue;
        }
        nl_exec += c.executed;
        if let Some(pred) = aphc.predict(&ctx) {
            nl_cov_exec += c.executed;
            nl_cov_miss += if pred {
                (c.executed - c.taken) as f64
            } else {
                c.taken as f64
            };
        }
    }

    let uncovered = (nl_exec - nl_cov_exec) as f64;
    let nonloop_total_miss = nl_cov_miss + uncovered / 2.0;
    let total = loop_exec + nl_exec;
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    Table5Row {
        name: b.bench.name.to_string(),
        loop_miss: ratio(loop_miss, loop_exec as f64),
        pct_non_loop: ratio(nl_exec as f64, total as f64),
        coverage: ratio(nl_cov_exec as f64, nl_exec as f64),
        heur_miss: ratio(nl_cov_miss, nl_cov_exec as f64),
        nonloop_miss: ratio(nonloop_total_miss, nl_exec as f64),
        overall: ratio(loop_miss + nonloop_total_miss, total as f64),
    }
}

/// Compute every row of Table 5.
pub fn compute(suite: &SuiteData) -> Vec<Table5Row> {
    suite.benches.iter().map(compute_one).collect()
}

/// Render Table 5 in the paper's layout.
pub fn table5(suite: &SuiteData) -> String {
    let rows = compute(suite);
    let mut t = TextTable::new(vec![
        "Program",
        "Loop Miss",
        "%Non-Loop",
        "%Covered",
        "Heur Miss",
        "w/ Default",
        "Overall",
    ]);
    let mut prev_group = None;
    for (row, bench) in rows.iter().zip(&suite.benches) {
        if prev_group.is_some() && prev_group != Some(bench.bench.group) {
            t.separator();
        }
        prev_group = Some(bench.bench.group);
        t.row(vec![
            row.name.clone(),
            pct(row.loop_miss),
            pct(row.pct_non_loop),
            pct(row.coverage),
            pct(row.heur_miss),
            pct(row.nonloop_miss),
            pct(row.overall),
        ]);
    }
    let n = rows.len().max(1) as f64;
    t.separator();
    t.row(vec![
        "Overall Avg".to_string(),
        pct(rows.iter().map(|r| r.loop_miss).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.pct_non_loop).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.coverage).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.heur_miss).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.nonloop_miss).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.overall).sum::<f64>() / n),
    ]);
    format!(
        "Table 5: program-based heuristic detail ({})\n\n{}",
        suite.config.name,
        t.render()
    )
}
