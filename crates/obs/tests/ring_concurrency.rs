//! Concurrency tests for the trace ring: producers racing a drainer must
//! never tear an event, lose a counted one, or reorder a thread's stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use esp_obs::ring::TraceRing;
use esp_obs::trace::{EventKind, TraceEvent};
use esp_obs::ArgValue;

fn ev(tid: u64, seq: u64) -> TraceEvent {
    TraceEvent {
        name: "race",
        cat: "test",
        kind: EventKind::Instant,
        ts_us: seq,
        dur_us: seq.wrapping_mul(3), // redundant encoding: torn writes show up
        tid,
        args: vec![("seq", ArgValue::U64(seq))],
    }
}

fn check_not_torn(e: &TraceEvent) -> u64 {
    assert_eq!(e.name, "race");
    assert_eq!(e.cat, "test");
    assert_eq!(e.dur_us, e.ts_us.wrapping_mul(3), "event fields torn apart");
    match e.args.as_slice() {
        [("seq", ArgValue::U64(s))] => {
            assert_eq!(*s, e.ts_us, "args belong to a different event");
            *s
        }
        other => panic!("unexpected args {other:?}"),
    }
}

/// One producer hammers the ring while the consumer drains concurrently.
/// Every drained event must be whole and in push order, and pushes + drops
/// must account for every attempt.
#[test]
fn producer_races_drainer_without_tearing() {
    const PUSHES: u64 = 50_000;
    let ring = Arc::new(TraceRing::new(9, 64)); // small: forces wraparound + drops
    let done = Arc::new(AtomicBool::new(false));

    let producer = {
        let ring = Arc::clone(&ring);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut accepted = 0u64;
            for seq in 0..PUSHES {
                if ring.push(ev(9, seq)) {
                    accepted += 1;
                }
            }
            done.store(true, Ordering::Release);
            accepted
        })
    };

    let mut drained: Vec<TraceEvent> = Vec::new();
    while !done.load(Ordering::Acquire) {
        ring.drain_into(&mut drained);
    }
    ring.drain_into(&mut drained); // pick up the tail published before `done`

    let accepted = producer.join().expect("producer finished");
    assert_eq!(drained.len() as u64, accepted, "accepted events all drained");
    assert_eq!(accepted + ring.dropped(), PUSHES, "every push accounted for");
    assert!(accepted > 0, "some pushes must land");

    let mut prev = None;
    for e in &drained {
        let seq = check_not_torn(e);
        if let Some(p) = prev {
            assert!(seq > p, "drain preserves push order ({seq} after {p})");
        }
        prev = Some(seq);
    }
}

/// Many threads emit spans through the collector while the main thread
/// drains concurrently; the union of all drains plus the dropped count must
/// cover every span, with per-thread streams intact.
#[test]
fn collector_drain_races_span_writers() {
    const THREADS: usize = 4;
    const SPANS: u64 = 2_000;
    esp_obs::trace::enable_with_capacity(1024);

    let writers: Vec<_> = (0..THREADS)
        .map(|w| {
            std::thread::spawn(move || {
                for seq in 0..SPANS {
                    let mut sp = esp_obs::span!("test", "worker_span", writer = w);
                    sp.arg("seq", seq);
                }
            })
        })
        .collect();

    let mut drained: Vec<TraceEvent> = Vec::new();
    while writers.iter().any(|w| !w.is_finished()) {
        drained.extend(esp_obs::trace::drain());
    }
    for w in writers {
        w.join().expect("writer finished");
    }
    drained.extend(esp_obs::trace::drain());
    esp_obs::trace::disable();

    let expected = (THREADS as u64) * SPANS;
    assert_eq!(
        drained.len() as u64 + esp_obs::trace::dropped(),
        expected,
        "drained + dropped covers every span"
    );
    assert!(!drained.is_empty(), "concurrent drains saw events");
    // Each thread emits every seq exactly once; a torn or duplicated event
    // would break the per-writer seq sets.
    let mut seen: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        std::collections::HashMap::new();
    for e in &drained {
        assert_eq!(e.name, "worker_span");
        assert_eq!(e.cat, "test");
        assert!(matches!(e.kind, EventKind::Complete));
        assert_eq!(e.args.len(), 2, "both args survived: {:?}", e.args);
        let writer = match e.args.iter().find(|(k, _)| *k == "writer") {
            Some((_, ArgValue::U64(w))) => *w,
            other => panic!("missing writer arg: {other:?}"),
        };
        let seq = match e.args.iter().find(|(k, _)| *k == "seq") {
            Some((_, ArgValue::U64(s))) => *s,
            other => panic!("missing seq arg: {other:?}"),
        };
        assert!(writer < THREADS as u64);
        assert!(seq < SPANS);
        assert!(
            seen.entry(writer).or_default().insert(seq),
            "writer {writer} seq {seq} drained twice"
        );
    }
}
