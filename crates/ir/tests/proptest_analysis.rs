//! Property tests for the CFG analyses: dominators checked against the
//! naive set-based definition, post-dominator duality, RPO validity, and
//! natural-loop invariants — all over randomly generated CFGs.

use esp_ir::{
    BlockId, BranchOp, Cfg, DomTree, FunctionBuilder, Lang, LoopInfo, Reg, Terminator,
};
use proptest::prelude::*;

/// A compact description of a random CFG: per block, a terminator shape and
/// target indices (taken modulo the block count at build time).
#[derive(Debug, Clone)]
enum TermShape {
    Jump(usize),
    Cond(usize, usize),
    Ret,
}

fn term_shape() -> impl Strategy<Value = TermShape> {
    prop_oneof![
        3 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| TermShape::Cond(a, b)),
        2 => any::<usize>().prop_map(TermShape::Jump),
        1 => Just(TermShape::Ret),
    ]
}

fn random_function(shapes: Vec<TermShape>) -> esp_ir::Function {
    let n = shapes.len().max(1);
    let mut b = FunctionBuilder::new("rand", 0, Lang::C);
    let r = b.fresh_reg();
    for _ in 1..n {
        b.new_block();
    }
    b.push_load_imm(BlockId(0), r, 1);
    for (i, shape) in shapes.iter().enumerate().take(n) {
        let id = BlockId(i as u32);
        match shape {
            TermShape::Jump(t) => b.set_jump(id, BlockId((t % n) as u32)),
            TermShape::Cond(t, f) => b.set_cond_branch(
                id,
                BranchOp::Bne,
                r,
                None,
                BlockId((t % n) as u32),
                BlockId((f % n) as u32),
            ),
            TermShape::Ret => b.set_return(id, None),
        }
    }
    b.finish()
}

/// Naive dominance: `a` dominates `b` iff `b` is reachable and removing `a`
/// makes `b` unreachable from the entry (or `a == b`).
fn naive_dominates(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    if !cfg.is_reachable(b) {
        return false;
    }
    // BFS from entry avoiding `a`.
    let mut seen = vec![false; cfg.num_blocks()];
    let mut stack = vec![BlockId(0)];
    if a == BlockId(0) {
        return true; // entry dominates everything reachable
    }
    seen[0] = true;
    while let Some(x) = stack.pop() {
        for e in cfg.succs(x) {
            if e.to != a && !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    !seen[b.index()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominators_match_naive_definition(shapes in prop::collection::vec(term_shape(), 1..14)) {
        let f = random_function(shapes);
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let n = cfg.num_blocks();
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (BlockId(a as u32), BlockId(b as u32));
                if !cfg.is_reachable(b) {
                    continue; // dominance undefined off the reachable region
                }
                prop_assert_eq!(
                    dom.dominates(a, b),
                    naive_dominates(&cfg, a, b),
                    "a={} b={}", a, b
                );
            }
        }
    }

    #[test]
    fn rpo_is_a_permutation_with_entry_first(shapes in prop::collection::vec(term_shape(), 1..14)) {
        let f = random_function(shapes);
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        prop_assert_eq!(rpo.len(), cfg.num_blocks());
        prop_assert_eq!(rpo[0], BlockId(0));
        let mut seen = vec![false; cfg.num_blocks()];
        for b in &rpo {
            prop_assert!(!seen[b.index()]);
            seen[b.index()] = true;
        }
    }

    #[test]
    fn back_edges_iff_target_dominates_source(shapes in prop::collection::vec(term_shape(), 1..14)) {
        let f = random_function(shapes);
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let loops = LoopInfo::new(&cfg, &dom);
        for e in cfg.edges() {
            let expected = cfg.is_reachable(e.from) && dom.dominates(e.to, e.from);
            prop_assert_eq!(
                loops.is_back_edge(e.from, e.to),
                expected,
                "edge {} -> {}", e.from, e.to
            );
        }
    }

    #[test]
    fn loop_headers_dominate_their_bodies(shapes in prop::collection::vec(term_shape(), 1..14)) {
        let f = random_function(shapes);
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let loops = LoopInfo::new(&cfg, &dom);
        for l in loops.loops() {
            for i in 0..cfg.num_blocks() {
                let b = BlockId(i as u32);
                if l.contains(b) {
                    prop_assert!(
                        dom.dominates(l.header, b),
                        "header {} must dominate body block {}", l.header, b
                    );
                }
            }
            // latches are body members carrying the back edge
            for latch in &l.latches {
                prop_assert!(l.contains(*latch));
                prop_assert!(loops.is_back_edge(*latch, l.header));
            }
        }
    }

    #[test]
    fn postdominators_respect_exit_reachability(shapes in prop::collection::vec(term_shape(), 1..14)) {
        let f = random_function(shapes);
        let cfg = Cfg::new(&f);
        let pdom = DomTree::postdominators(&cfg);
        // every exit block post-dominates itself and nothing it can't reach
        for i in 0..cfg.num_blocks() {
            let b = BlockId(i as u32);
            prop_assert!(pdom.dominates(b, b));
            if cfg.succs(b).is_empty() {
                // an exit can only be post-dominated by itself
                for j in 0..cfg.num_blocks() {
                    let a = BlockId(j as u32);
                    if a != b {
                        prop_assert!(!pdom.dominates(a, b), "{} pdom exit {}", a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn exit_edges_leave_some_loop(shapes in prop::collection::vec(term_shape(), 1..14)) {
        let f = random_function(shapes);
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let loops = LoopInfo::new(&cfg, &dom);
        for e in cfg.edges() {
            let expected = loops
                .loops()
                .iter()
                .any(|l| l.contains(e.from) && !l.contains(e.to));
            prop_assert_eq!(loops.is_exit_edge(e.from, e.to), expected);
        }
    }
}

#[test]
fn terminator_successors_are_consistent_with_cfg() {
    // cheap determinism check reused by the property harness
    let f = random_function(vec![TermShape::Cond(1, 2), TermShape::Jump(0), TermShape::Ret]);
    let cfg = Cfg::new(&f);
    for (id, block) in f.iter_blocks() {
        let succs: Vec<BlockId> = cfg.succs(id).iter().map(|e| e.to).collect();
        assert_eq!(succs, block.term.successors());
    }
    let _ = (Reg(0), Terminator::Return { value: None });
}
