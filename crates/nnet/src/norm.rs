//! Input normalization: zero mean, unit standard deviation per input, fitted
//! on the training set and applied unchanged to test inputs (paper §3.1.1).

/// Per-feature affine normalizer.
///
/// Constant features (zero variance) pass through as zero after centring,
/// which also implements the paper's handling of non-meaningful *dependent*
/// features: the caller zeroes them **after** normalization, "equivalent to
/// gating the flow of activity from these features".
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl Normalizer {
    /// Fit means and standard deviations over `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows disagree on length.
    pub fn fit<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = rows.into_iter();
        let first = iter.next().expect("cannot fit a normalizer on no rows");
        let d = first.len();
        let mut count = 1.0f64;
        let mut mean = first.to_vec();
        let mut m2 = vec![0.0f64; d];
        for row in iter {
            assert_eq!(row.len(), d, "inconsistent row length");
            count += 1.0;
            for j in 0..d {
                let delta = row[j] - mean[j];
                mean[j] += delta / count;
                m2[j] += delta * (row[j] - mean[j]);
            }
        }
        let inv_std = m2
            .iter()
            .map(|m2| {
                let var = m2 / count;
                if var > 1e-24 {
                    1.0 / var.sqrt()
                } else {
                    0.0 // constant feature: normalized value is 0
                }
            })
            .collect();
        Normalizer { mean, inv_std }
    }

    /// Rebuild a normalizer from persisted statistics (the inverse of
    /// [`Normalizer::mean`] / [`Normalizer::inv_std`]).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors disagree on length.
    pub fn from_parts(mean: Vec<f64>, inv_std: Vec<f64>) -> Self {
        assert_eq!(mean.len(), inv_std.len(), "mean/inv_std length mismatch");
        Normalizer { mean, inv_std }
    }

    /// Per-feature means fitted on the training set.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-feature inverse standard deviations (`0` for constant features).
    pub fn inv_std(&self) -> &[f64] {
        &self.inv_std
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Normalize one row in place.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        for ((x, m), s) in row.iter_mut().zip(&self.mean).zip(&self.inv_std) {
            *x = (*x - m) * s;
        }
    }

    /// Normalize a borrowed row into a fresh vector.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_zero_mean_unit_std() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 5.0]).collect();
        let n = Normalizer::fit(rows.iter().map(|r| r.as_slice()));
        assert_eq!(n.dim(), 2);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| n.transform(r)).collect();
        let mean0: f64 = transformed.iter().map(|r| r[0]).sum::<f64>() / 100.0;
        let var0: f64 = transformed.iter().map(|r| r[0] * r[0]).sum::<f64>() / 100.0;
        assert!(mean0.abs() < 1e-9);
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_features_become_zero() {
        let rows = [[3.0, 1.0], [3.0, 2.0]];
        let n = Normalizer::fit(rows.iter().map(|r| r.as_slice()));
        let t = n.transform(&[3.0, 1.5]);
        assert_eq!(t[0], 0.0);
        // and unseen values of a constant feature stay finite
        let t = n.transform(&[99.0, 1.5]);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn apply_in_place_matches_transform() {
        let rows = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        let n = Normalizer::fit(rows.iter().map(|r| r.as_slice()));
        let mut row = [3.0, 4.0];
        n.apply(&mut row);
        assert_eq!(row.to_vec(), n.transform(&[3.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_fit_rejected() {
        let _ = Normalizer::fit(std::iter::empty::<&[f64]>());
    }
}
