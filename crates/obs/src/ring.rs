//! The bounded per-thread trace ring buffer.
//!
//! One [`TraceRing`] belongs to exactly one producer thread; a single
//! drainer consumes from the other end. [`crate::trace::drain`] is that
//! drainer — it holds the collector's registry lock across the whole drain
//! loop, so at most one consumer ever touches a ring at a time. The index
//! protocol is single-producer / single-consumer:
//!
//! * the producer owns `tail`: it writes the slot at `tail % cap`, then
//!   publishes it with a `Release` store of `tail + 1`;
//! * the consumer owns `head`: it loads `tail` with `Acquire`, takes every
//!   slot in `[head, tail)`, then frees them with a `Release` store of
//!   `head = tail`.
//!
//! The ranges a producer writes and a consumer reads are disjoint by
//! construction (the producer only touches index `tail`, the consumer only
//! indices below the `tail` it observed), so no slot is ever accessed from
//! two threads at once. Each slot still sits behind a `Mutex` to keep the
//! crate free of `unsafe`; by the protocol above those locks are always
//! uncontended, so the push fast path is one uncontended lock plus two
//! atomic index operations — the producer never blocks on the drainer.
//!
//! Slot storage is allocated **lazily in chunks** of [`CHUNK`] slots: a new
//! ring allocates only its chunk table (a few pointers), and a chunk
//! materializes the first time an event lands in it. Short-lived pool
//! workers that record a handful of events therefore cost one chunk
//! (~tens of KB), not the full [`DEFAULT_CAPACITY`] ring (~MBs). Rings of
//! exited threads are recycled through the collector's free list (see
//! [`crate::trace`]), so `parallel_map` regions spawning fresh scoped
//! threads reuse rings instead of accumulating them.
//!
//! When the ring is full the producer **drops the event and counts it**
//! rather than waiting: observation must never stall the pipeline. Dropped
//! counts are reported by [`crate::trace::dropped`] so a truncated trace is
//! visible instead of silent.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::trace::TraceEvent;

/// Default events per thread before the ring starts dropping.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Slots per lazily-allocated chunk. Small enough that a transient worker
/// thread recording a few events allocates ~one chunk, large enough that a
/// busy thread touches the chunk table rarely.
pub const CHUNK: usize = 256;

type Slot = Mutex<Option<TraceEvent>>;

/// A bounded single-producer / single-consumer event ring with lazily
/// allocated slot storage.
#[derive(Debug)]
pub struct TraceRing {
    /// Chunk table: `capacity.div_ceil(CHUNK)` entries, each materialized
    /// on first touch by the producer.
    chunks: Vec<OnceLock<Box<[Slot]>>>,
    capacity: usize,
    /// Consumer cursor: everything below it has been drained.
    head: AtomicUsize,
    /// Producer cursor: everything below it is published.
    tail: AtomicUsize,
    dropped: AtomicU64,
    tid: u64,
}

impl TraceRing {
    /// An empty ring of `capacity` slots for thread `tid`. Allocates only
    /// the chunk table; slot chunks materialize as events land in them.
    pub fn new(tid: u64, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            chunks: (0..capacity.div_ceil(CHUNK))
                .map(|_| OnceLock::new())
                .collect(),
            capacity,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// The thread id this ring records for.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Total slots this ring can hold (allocated or not).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// How many slots are currently backed by allocated chunks — `0` for a
    /// fresh ring, growing in [`CHUNK`] steps up to the capacity as events
    /// land. Exposed so tests can pin the lazy-allocation contract.
    pub fn allocated_slots(&self) -> usize {
        self.chunks.iter().filter(|c| c.get().is_some()).count() * CHUNK
    }

    /// The slot for logical index `idx`, materializing its chunk on first
    /// touch. Only the producer initializes chunks (the consumer reads
    /// indices below a published `tail`, whose chunk the producer already
    /// created).
    fn slot(&self, idx: usize) -> &Slot {
        let i = idx % self.capacity;
        let chunk = self.chunks[i / CHUNK].get_or_init(|| {
            (0..CHUNK)
                .map(|_| Mutex::new(None))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &chunk[i % CHUNK]
    }

    /// Append one event (producer side). Returns `false` — and counts the
    /// event as dropped — when the ring is full. Never blocks on a drain.
    pub fn push(&self, event: TraceEvent) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        *self.slot(tail).lock().expect("ring slot poisoned") = Some(event);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Take every published event, in push order (consumer side). The
    /// caller must be the sole consumer — [`crate::trace::drain`] guarantees
    /// this by holding the registry lock across the drain loop.
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            let ev = self
                .slot(i)
                .lock()
                .expect("ring slot poisoned")
                .take()
                .expect("published slot holds an event");
            out.push(ev);
            i = i.wrapping_add(1);
        }
        self.head.store(tail, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArgValue, EventKind};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: "test",
            kind: EventKind::Instant,
            ts_us: seq,
            dur_us: 0,
            tid: 0,
            args: vec![("seq", ArgValue::U64(seq))],
        }
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let r = TraceRing::new(3, 8);
        for s in 0..5 {
            assert!(r.push(ev(s)));
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_us, i as u64);
        }
        assert_eq!(r.tid(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = TraceRing::new(0, 4);
        for s in 0..6 {
            r.push(ev(s));
        }
        assert_eq!(r.dropped(), 2);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 4, "first four kept, rest dropped");
        // drained slots are reusable
        assert!(r.push(ev(99)));
        let mut out2 = Vec::new();
        r.drain_into(&mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].ts_us, 99);
    }

    #[test]
    fn slot_chunks_allocate_lazily() {
        let r = TraceRing::new(0, DEFAULT_CAPACITY);
        assert_eq!(r.allocated_slots(), 0, "a fresh ring owns no slots");
        for s in 0..3 {
            assert!(r.push(ev(s)));
        }
        assert_eq!(
            r.allocated_slots(),
            CHUNK,
            "a few events cost one chunk, not the whole capacity"
        );
        // Filling past a chunk boundary materializes exactly one more.
        for s in 3..(CHUNK as u64 + 1) {
            assert!(r.push(ev(s)));
        }
        assert_eq!(r.allocated_slots(), 2 * CHUNK);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), CHUNK + 1);
    }

    #[test]
    fn wraparound_crosses_chunk_boundaries() {
        // Capacity larger than one chunk, cursors wrapping several times.
        let cap = CHUNK * 2;
        let r = TraceRing::new(0, cap);
        let mut next = 0u64;
        let mut expect = 0u64;
        for round in 1..=3 {
            for _ in 0..(cap - round) {
                assert!(r.push(ev(next)));
                next += 1;
            }
            let mut out = Vec::new();
            r.drain_into(&mut out);
            assert_eq!(out.len(), cap - round);
            for e in out {
                assert_eq!(e.ts_us, expect);
                expect += 1;
            }
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.allocated_slots(), cap, "both chunks touched after wrap");
    }
}
