//! Evidence-based Static Prediction (ESP) — the paper's contribution.
//!
//! ESP predicts the direction of conditional branches in *unseen* programs
//! from the behaviour of a corpus of other programs:
//!
//! 1. [`features::extract`] pulls the Table 2 static feature set out of each
//!    branch site (opcode chain, loop structure, language, procedure kind,
//!    and eight structural features per successor);
//! 2. [`encode`] one-hot-encodes the record, normalizes inputs over the
//!    training set, and gates *dependent* features to zero exactly as
//!    §3.1.1 prescribes;
//! 3. [`EspModel::train`] fits the paper's neural network (or the
//!    decision-tree alternative) under the misprediction-cost loss, each
//!    example weighted by its normalized execution frequency;
//! 4. [`crossval::cross_validate`] runs the leave-one-out protocol of §4.
//!
//! # Example
//!
//! ```
//! use esp_core::{EspConfig, EspModel, TrainingProgram, Learner};
//! use esp_ir::{Lang, ProgramAnalysis};
//! use esp_lang::{compile_source, CompilerConfig};
//! use esp_nnet::MlpConfig;
//!
//! // Train on one tiny program, predict another.
//! let train_prog = compile_source(
//!     "train",
//!     "int main() { int i = 0; int s = 0; while (i < 90) { s = s + i; i = i + 1; } return s; }",
//!     Lang::C, &CompilerConfig::default())?;
//! let train_an = ProgramAnalysis::analyze(&train_prog);
//! let train_pr = esp_exec::run(&train_prog, &esp_exec::ExecLimits::default()).unwrap().profile;
//!
//! let cfg = EspConfig {
//!     learner: Learner::Net(MlpConfig { hidden: 4, max_epochs: 80, restarts: 1, ..MlpConfig::default() }),
//!     ..EspConfig::default()
//! };
//! let model = EspModel::train(&[TrainingProgram {
//!     prog: &train_prog, analysis: &train_an, profile: &train_pr,
//! }], &cfg);
//!
//! let test_prog = compile_source(
//!     "test",
//!     "int main() { int j = 0; int t = 0; while (j < 40) { t = t + 2; j = j + 1; } return t; }",
//!     Lang::C, &CompilerConfig::default())?;
//! let test_an = ProgramAnalysis::analyze(&test_prog);
//! for site in test_prog.branch_sites() {
//!     let p = model.predict_prob(&test_prog, &test_an, site);
//!     assert!((0.0..=1.0).contains(&p));
//! }
//! # Ok::<(), esp_lang::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod encode;
pub mod extended;
pub mod features;
pub mod model;

pub use crossval::{cross_validate, leave_one_out};
pub use encode::{encode, encoded_dim, FeatureSet, FittedEncoder, ENCODED_DIM, EXTENDED_DIM};
pub use extended::ExtendedContext;
pub use features::{extract, BranchFeatures, ExtendedFeatures, SuccessorFeatures, FEATURE_COUNT};
pub use model::{build_training_set, EspConfig, EspModel, Learner, TrainingProgram};
