//! `esp-serve` — a std-only prediction-serving subsystem for trained ESP
//! models.
//!
//! The crate turns saved [`esp_artifact`] models into a network service: a
//! single-reactor event-loop TCP server speaking a length-prefixed binary
//! protocol, answering batched predict requests with the *exact* bits the
//! in-process model would produce. Around that core sit:
//!
//! - [`protocol`] — the wire format: u32-length-prefixed frames carrying
//!   `PREDICT` / `STATS` / `INFO` / `SHUTDOWN` / `PROFILE` requests and
//!   their typed responses; since v4 PREDICT and INFO carry a model
//!   selector for multi-model routing.
//! - [`server`] — the nonblocking reactor (resumable per-connection
//!   read→decode→dispatch→write state machines), graceful drain on
//!   shutdown, and the hot-reload watcher.
//! - `shard` (internal) — N shard workers owning per-shard LRU caches;
//!   rows route by a stable FNV-1a hash of their cache-key bytes, so a
//!   feature vector always lands on the shard that may hold it.
//! - `models` (internal) — the name/version routing table behind the v4
//!   model selector; hot reload atomically swaps entries here.
//! - [`cache`] — an O(1) exact-match LRU keyed on the raw feature bits, so
//!   repeated branch shapes skip the network forward pass.
//! - [`metrics`] — an [`esp_obs::MetricsRegistry`]-backed set of counters,
//!   latency/batch-size histograms, cache-hit-ratio and per-shard health
//!   gauges behind the `STATS` opcode, which also serves the full
//!   Prometheus-style text exposition.
//! - [`client`] — the blocking client library used by the `esp-client`
//!   binary and the integration tests.
//! - [`loadgen`] — a deterministic load generator (closed-loop over many
//!   connections, plus an open-loop arrival-rate sweep) that writes
//!   `BENCH_serve.json`.
//! - [`http`] — a std-only HTTP/1.1 telemetry sidecar (`--http-addr`)
//!   serving `GET /metrics`, `/healthz` and `/sitez?top=K`, sharing the
//!   exact exposition bytes the `STATS` opcode carries.
//!
//! Since protocol v3 the server also closes the accuracy loop: clients
//! stream observed branch outcomes back via the `PROFILE` opcode, and an
//! `esp_obs::Ledger` joins them with served predictions into live
//! miss-rate-vs-observed and calibration telemetry, keyed by [`site_key`]
//! (the cache's raw-bits row+mask key).
//!
//! Bitwise identity is the design invariant: clients send *raw* encoded
//! rows plus masks (what `esp_core::encode` produces), and the server
//! applies the same normalize-and-forward path as
//! `EspModel::predict_prob`, so a served probability equals the in-process
//! one bit for bit — at any shard count, chunk size, or connection count.
//! The integration tests assert exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
mod models;
pub mod protocol;
pub mod server;
mod shard;

pub use cache::cache_key as site_key;
pub use client::Client;
pub use loadgen::{key_pool, LoadGenConfig, LoadGenReport};
pub use metrics::Metrics;
pub use protocol::{
    FrameReader, PredictRow, Prediction, ProfileAck, ProfileRecord, Request, Response,
    ServeError, ServerInfo, StatsSnapshot, PROTOCOL_VERSION,
};
pub use server::{serve, serve_any, serve_registry, Precision, ServeConfig, ServerHandle};
