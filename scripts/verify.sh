#!/usr/bin/env bash
# Tier-1 verification gate, hermetic by construction: every step runs with
# --offline so a regression that reintroduces a registry dependency fails
# here rather than on the first airgapped machine.
#
#   scripts/verify.sh          # build + test + bench smoke
#   scripts/verify.sh --fast   # build + test only
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

if [[ "$fast" -eq 0 ]]; then
    echo "==> bench smoke (quick pipeline bench, writes BENCH_pipeline.json)"
    cargo run --release --offline -q -p esp-bench --bin bench_pipeline -- --quick
    echo "==> BENCH_pipeline.json:"
    cat BENCH_pipeline.json
fi

echo "==> verify OK"
