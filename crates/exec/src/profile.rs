//! Dynamic branch profiles.

use std::collections::BTreeMap;

use esp_ir::{BlockId, BranchId, FuncId};

/// Dynamic counts for one static conditional-branch site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounts {
    /// How many times the branch executed.
    pub executed: u64,
    /// How many times it was taken (`taken <= executed`).
    pub taken: u64,
}

impl BranchCounts {
    /// Fraction of executions in which the branch was taken, or `None` when
    /// it never executed.
    ///
    /// This is the per-site ground-truth probability every study keys on:
    /// the training target of the ESP network (§3.1) and the oracle the
    /// Wu–Larus frequency estimation consults. It is exactly
    /// `taken / executed` — no smoothing, no prior — so a branch that ran
    /// once reports `0.0` or `1.0`, and one that never ran reports `None`
    /// rather than a fabricated `0.5`.
    pub fn taken_prob(&self) -> Option<f64> {
        (self.executed > 0).then(|| self.taken as f64 / self.executed as f64)
    }

    /// Mispredictions of the *perfect static* predictor for this branch: the
    /// minority direction count (the paper's "perfect static profile
    /// prediction", Table 4 last column).
    ///
    /// A static predictor picks **one** direction per site, so the best any
    /// static scheme can do is predict the majority direction and eat the
    /// minority mass: `perfect_misses == min(taken, not_taken)` where
    /// `not_taken = executed - taken`. Replaying a recorded outcome trace
    /// through a fixed majority-direction prediction must reproduce this
    /// count event-for-event (`crates/sim/tests/trace_consistency.rs` pins
    /// that equivalence against the streaming trace sink).
    pub fn perfect_misses(&self) -> u64 {
        self.taken.min(self.executed - self.taken)
    }
}

/// The dynamic profile of one program run.
///
/// Keys are static [`BranchId`]s; branch sites that never executed do not
/// appear (callers that need all sites should iterate
/// [`esp_ir::Program::branch_sites`] and treat missing entries as zero).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    branches: BTreeMap<BranchId, BranchCounts>,
    block_exec: BTreeMap<(FuncId, BlockId), u64>,
    /// Total dynamic IR instructions executed (terminators included).
    pub dyn_insns: u64,
    /// Total dynamic conditional-branch executions.
    pub dyn_cond_branches: u64,
}

impl Profile {
    /// Counts for one branch site, or `None` if it never executed.
    pub fn counts(&self, id: BranchId) -> Option<&BranchCounts> {
        self.branches.get(&id)
    }

    /// Iterate over executed branch sites in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&BranchId, &BranchCounts)> {
        self.branches.iter()
    }

    /// Number of distinct branch sites that executed at least once.
    pub fn executed_sites(&self) -> usize {
        self.branches.len()
    }

    /// The *normalized branch weight* of a site (§3.1): its execution count
    /// divided by the program's total conditional-branch executions. Zero for
    /// never-executed sites.
    pub fn weight(&self, id: BranchId) -> f64 {
        if self.dyn_cond_branches == 0 {
            return 0.0;
        }
        self.branches
            .get(&id)
            .map(|c| c.executed as f64 / self.dyn_cond_branches as f64)
            .unwrap_or(0.0)
    }

    /// Dynamic execution count of a basic block (used by the Figure 2 case
    /// study). Zero when the block never ran.
    pub fn block_count(&self, func: FuncId, block: BlockId) -> u64 {
        self.block_exec.get(&(func, block)).copied().unwrap_or(0)
    }

    /// Fraction of all executed conditional branches that were taken
    /// (Table 3's "%Taken" column). `None` when no branch ran.
    pub fn overall_taken_fraction(&self) -> Option<f64> {
        if self.dyn_cond_branches == 0 {
            return None;
        }
        let taken: u64 = self.branches.values().map(|c| c.taken).sum();
        Some(taken as f64 / self.dyn_cond_branches as f64)
    }

    /// The number of hottest branch sites that together account for at least
    /// `fraction` (in `[0, 1]`) of all executed conditional branches —
    /// Table 3's quantile columns (Q-50 … Q-100).
    pub fn quantile_sites(&self, fraction: f64) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0,1], got {fraction}"
        );
        if self.dyn_cond_branches == 0 {
            return 0;
        }
        let mut counts: Vec<u64> = self.branches.values().map(|c| c.executed).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let target = (fraction * self.dyn_cond_branches as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i + 1;
            }
        }
        counts.len()
    }

    pub(crate) fn record_branch(&mut self, id: BranchId, taken: bool) {
        let c = self.branches.entry(id).or_default();
        c.executed += 1;
        c.taken += taken as u64;
        self.dyn_cond_branches += 1;
    }

    pub(crate) fn record_block(&mut self, func: FuncId, block: BlockId) {
        *self.block_exec.entry((func, block)).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(b: u32) -> BranchId {
        BranchId {
            func: FuncId(0),
            block: BlockId(b),
        }
    }

    #[test]
    fn counts_and_weight() {
        let mut p = Profile::default();
        for _ in 0..3 {
            p.record_branch(bid(0), true);
        }
        p.record_branch(bid(1), false);
        assert_eq!(p.counts(bid(0)).unwrap().executed, 3);
        assert_eq!(p.counts(bid(0)).unwrap().taken, 3);
        assert_eq!(p.weight(bid(0)), 0.75);
        assert_eq!(p.weight(bid(9)), 0.0);
        assert_eq!(p.executed_sites(), 2);
        assert_eq!(p.overall_taken_fraction(), Some(0.75));
    }

    #[test]
    fn perfect_misses_is_minority_count() {
        let c = BranchCounts {
            executed: 10,
            taken: 7,
        };
        assert_eq!(c.perfect_misses(), 3);
        assert_eq!(c.taken_prob(), Some(0.7));
        let never = BranchCounts::default();
        assert_eq!(never.taken_prob(), None);
    }

    #[test]
    fn quantiles_count_hottest_sites() {
        let mut p = Profile::default();
        // site 0: 90 executions, site 1: 9, site 2: 1
        for _ in 0..90 {
            p.record_branch(bid(0), true);
        }
        for _ in 0..9 {
            p.record_branch(bid(1), true);
        }
        p.record_branch(bid(2), true);
        assert_eq!(p.quantile_sites(0.5), 1);
        assert_eq!(p.quantile_sites(0.9), 1);
        assert_eq!(p.quantile_sites(0.95), 2);
        assert_eq!(p.quantile_sites(1.0), 3);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn quantile_rejects_bad_fraction() {
        let p = Profile::default();
        let _ = p.quantile_sites(1.5);
    }

    #[test]
    fn empty_profile_edge_cases() {
        let p = Profile::default();
        assert_eq!(p.quantile_sites(0.5), 0);
        assert_eq!(p.overall_taken_fraction(), None);
        assert_eq!(p.weight(bid(0)), 0.0);
        assert_eq!(p.block_count(FuncId(0), BlockId(0)), 0);
    }
}
