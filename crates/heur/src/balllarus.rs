//! The nine Ball–Larus heuristics (the paper's Table 1) and BTFNT.

use esp_ir::defuse::{branch_compare_regs, effective_compare, used_before_def, CompareRhs};
use esp_ir::CmpOp;

use crate::ctx::BranchCtx;

/// Backward-taken / forward-not-taken: predict taken exactly when the branch
/// is backward. Covers every branch ("relies solely on the sign bit of the
/// branch displacement").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Btfnt;

impl Btfnt {
    /// BTFNT's prediction (always defined).
    pub fn predict(&self, ctx: &BranchCtx<'_>) -> bool {
        ctx.is_backward()
    }
}

/// One Ball–Larus heuristic, as defined in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Predict that the edge back to the loop's head is taken and the edge
    /// exiting the loop is not taken.
    LoopBranch,
    /// If a branch compares a pointer against null or compares two pointers,
    /// predict the branch on false condition as taken.
    Pointer,
    /// If a branch checks an integer for less than zero, less than or equal
    /// to zero, or equal to a constant, predict the branch on false
    /// condition.
    Opcode,
    /// If a register is an operand of the branch comparison, the register is
    /// used before being defined in a successor block, and the successor
    /// block does not post-dominate the branch, predict the successor block
    /// as taken.
    Guard,
    /// If a comparison is inside a loop and no successor is a loop head,
    /// predict the edge exiting the loop as not taken.
    LoopExit,
    /// Predict the successor that does not post-dominate and is a loop
    /// header or a loop pre-header as taken.
    LoopHeader,
    /// Predict the successor that contains a call and does not post-dominate
    /// the branch as taken.
    Call,
    /// Predict the successor that contains a store instruction and does not
    /// post-dominate the branch as not taken.
    Store,
    /// Predict the successor that contains a return as not taken.
    Return,
}

impl Heuristic {
    /// All heuristics in the order of the paper's Table 1 — the fixed
    /// application order used for APHC.
    pub const TABLE1_ORDER: [Heuristic; 9] = [
        Heuristic::LoopBranch,
        Heuristic::Pointer,
        Heuristic::Opcode,
        Heuristic::Guard,
        Heuristic::LoopExit,
        Heuristic::LoopHeader,
        Heuristic::Call,
        Heuristic::Store,
        Heuristic::Return,
    ];

    /// A stable dense index for side tables.
    pub fn ordinal(self) -> usize {
        Heuristic::TABLE1_ORDER
            .iter()
            .position(|h| *h == self)
            .expect("heuristic present in TABLE1_ORDER")
    }

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::LoopBranch => "Loop Branch",
            Heuristic::Pointer => "Pointer",
            Heuristic::Opcode => "Opcode",
            Heuristic::Guard => "Guard",
            Heuristic::LoopExit => "Loop Exit",
            Heuristic::LoopHeader => "Loop Header",
            Heuristic::Call => "Call",
            Heuristic::Store => "Store",
            Heuristic::Return => "Return",
        }
    }

    /// Apply the heuristic: `Some(true)` = predict taken, `Some(false)` =
    /// predict not taken, `None` = does not apply to this branch.
    pub fn predict(self, ctx: &BranchCtx<'_>) -> Option<bool> {
        let (taken, not_taken) = ctx.arms();
        let block = ctx.site.block;
        let a = ctx.analysis;
        match self {
            Heuristic::LoopBranch => {
                if a.loops.is_back_edge(block, taken) {
                    Some(true)
                } else if a.loops.is_back_edge(block, not_taken) {
                    Some(false)
                } else {
                    None
                }
            }
            Heuristic::Pointer => {
                let ec = effective_compare(ctx.block())?;
                if ec.is_float {
                    return None;
                }
                let lhs_ptr = a.pointers.is_pointer(ec.lhs);
                let involves_pointers = match ec.rhs {
                    CompareRhs::Reg(r) => lhs_ptr && a.pointers.is_pointer(r),
                    CompareRhs::Imm(0) => lhs_ptr, // p == null / p != null
                    CompareRhs::Imm(_) => false,
                };
                if !involves_pointers {
                    return None;
                }
                // Pointers are rarely equal/null: the == comparison is
                // false, the != comparison is true. `taken iff (lhs op rhs)`.
                match ec.op {
                    CmpOp::Eq => Some(false),
                    CmpOp::Ne => Some(true),
                    _ => None,
                }
            }
            Heuristic::Opcode => {
                let ec = effective_compare(ctx.block())?;
                if ec.is_float || a.pointers.is_pointer(ec.lhs) {
                    return None;
                }
                // `x < 0`, `x <= 0`, `x == c`: predict the comparison false,
                // i.e. the branch taken exactly when the *negated* form
                // appears.
                match (ec.op, ec.rhs) {
                    (CmpOp::Lt, CompareRhs::Imm(0)) | (CmpOp::Le, CompareRhs::Imm(0)) => {
                        Some(false)
                    }
                    (CmpOp::Ge, CompareRhs::Imm(0)) | (CmpOp::Gt, CompareRhs::Imm(0)) => {
                        Some(true)
                    }
                    (CmpOp::Eq, CompareRhs::Imm(_)) => Some(false),
                    (CmpOp::Ne, CompareRhs::Imm(_)) => Some(true),
                    _ => None,
                }
            }
            Heuristic::Guard => {
                let regs = branch_compare_regs(ctx.block());
                if regs.is_empty() {
                    return None;
                }
                let applies = |succ| {
                    !ctx.postdominates(succ)
                        && regs
                            .iter()
                            .any(|r| used_before_def(ctx.func.block(succ), *r))
                };
                if applies(taken) {
                    Some(true)
                } else if applies(not_taken) {
                    Some(false)
                } else {
                    None
                }
            }
            Heuristic::LoopExit => {
                if !a.loops.in_loop(block)
                    || a.loops.is_header(taken)
                    || a.loops.is_header(not_taken)
                {
                    return None;
                }
                if a.loops.is_exit_edge(block, taken) {
                    Some(false)
                } else if a.loops.is_exit_edge(block, not_taken) {
                    Some(true)
                } else {
                    None
                }
            }
            Heuristic::LoopHeader => {
                let applies =
                    |succ| a.loops.leads_to_header(succ) && !ctx.postdominates(succ);
                if applies(taken) {
                    Some(true)
                } else if applies(not_taken) {
                    Some(false)
                } else {
                    None
                }
            }
            Heuristic::Call => {
                let applies = |succ: esp_ir::BlockId| {
                    a.reaches_call[succ.index()] && !ctx.postdominates(succ)
                };
                if applies(taken) {
                    Some(true)
                } else if applies(not_taken) {
                    Some(false)
                } else {
                    None
                }
            }
            Heuristic::Store => {
                let applies = |succ: esp_ir::BlockId| {
                    a.has_store[succ.index()] && !ctx.postdominates(succ)
                };
                if applies(taken) {
                    Some(false)
                } else if applies(not_taken) {
                    Some(true)
                } else {
                    None
                }
            }
            Heuristic::Return => {
                let applies = |succ: esp_ir::BlockId| a.reaches_return[succ.index()];
                if applies(taken) {
                    Some(false)
                } else if applies(not_taken) {
                    Some(true)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_ir::{Lang, ProgramAnalysis};
    use esp_lang::{compile_source, CompilerConfig};

    /// Compile without if-conversion: several tests inspect short guarded
    /// assignments that the Alpha if-converter would (correctly) turn into
    /// conditional moves, removing the branch under test.
    fn contexts(src: &str) -> (esp_ir::Program, ProgramAnalysis) {
        let prog =
            compile_source("t", src, Lang::C, &CompilerConfig::gnu()).expect("compiles");
        let analysis = ProgramAnalysis::analyze(&prog);
        (prog, analysis)
    }

    /// Collect predictions of `h` over all branch sites.
    fn predictions(
        prog: &esp_ir::Program,
        analysis: &ProgramAnalysis,
        h: Heuristic,
    ) -> Vec<Option<bool>> {
        prog.branch_sites()
            .into_iter()
            .map(|s| h.predict(&BranchCtx::new(prog, analysis, s)))
            .collect()
    }

    #[test]
    fn loop_branch_predicts_back_edge_taken() {
        let (prog, analysis) = contexts(
            "int main() { int i = 0; int s = 0; while (i < 100) { s = s + i; i = i + 1; } return s; }",
        );
        let preds = predictions(&prog, &analysis, Heuristic::LoopBranch);
        // the rotated loop has a bottom-test branch whose taken edge is the
        // back edge
        assert!(
            preds.contains(&Some(true)),
            "no loop branch found: {preds:?}"
        );
    }

    #[test]
    fn pointer_heuristic_on_null_checks() {
        let (prog, analysis) = contexts(
            r#"
            int main() {
                int *p = alloc_int(8);
                int s = 0;
                int i;
                for (i = 0; i < 8; i = i + 1) { p[i] = i; }
                if (p == null) { s = 0 - 1; }
                if (p != null) { s = s + p[3]; }
                return s;
            }
            "#,
        );
        let preds = predictions(&prog, &analysis, Heuristic::Pointer);
        // `p == null` → comparison false → some prediction; `p != null` →
        // comparison true → some prediction; directions must differ in
        // *condition* space but both favour "pointer not null".
        let applied: Vec<bool> = preds.iter().filter_map(|p| *p).collect();
        assert!(
            applied.len() >= 2,
            "pointer heuristic should apply to both null checks: {preds:?}"
        );
    }

    #[test]
    fn opcode_heuristic_on_negative_checks() {
        let (prog, analysis) = contexts(
            r#"
            int main() {
                int x = 5;
                int s = 0;
                if (x < 0) { s = 0 - 1; }
                if (x == 7) { s = 2; }
                return s;
            }
            "#,
        );
        let preds = predictions(&prog, &analysis, Heuristic::Opcode);
        assert!(
            preds.iter().filter(|p| p.is_some()).count() >= 2,
            "opcode heuristic should cover `< 0` and `== const`: {preds:?}"
        );
    }

    #[test]
    fn return_heuristic_predicts_away_from_return() {
        let (prog, analysis) = contexts(
            r#"
            int f(int x) {
                if (x < 0) { return 0 - 1; }
                return x * 2;
            }
            int main() { return f(21); }
            "#,
        );
        let preds = predictions(&prog, &analysis, Heuristic::Return);
        // Both successors of the early-exit branch eventually return, but at
        // least one branch must be covered.
        assert!(preds.iter().any(|p| p.is_some()), "return heuristic never applied");
    }

    #[test]
    fn call_and_store_heuristics_apply() {
        let (prog, analysis) = contexts(
            r#"
            void log_error(int code) { int sink[1]; sink[0] = code; }
            int main() {
                int a[4];
                int x = 3;
                if (x > 100) { log_error(x); }
                if (x > 50) { a[0] = x; }
                return a[0];
            }
            "#,
        );
        assert!(
            predictions(&prog, &analysis, Heuristic::Call)
                .iter()
                .any(|p| p.is_some()),
            "call heuristic never applied"
        );
        assert!(
            predictions(&prog, &analysis, Heuristic::Store)
                .iter()
                .any(|p| p.is_some()),
            "store heuristic never applied"
        );
    }

    #[test]
    fn loop_exit_and_header_apply() {
        let (prog, analysis) = contexts(
            r#"
            int main() {
                int i = 0;
                int s = 0;
                while (i < 100) {
                    if (s > 1000) { break; }
                    s = s + i;
                    i = i + 1;
                }
                while (s > 0) { s = s - 7; }
                return s;
            }
            "#,
        );
        assert!(
            predictions(&prog, &analysis, Heuristic::LoopExit)
                .iter()
                .any(|p| p.is_some()),
            "loop-exit heuristic never applied (break inside loop)"
        );
        assert!(
            predictions(&prog, &analysis, Heuristic::LoopHeader)
                .iter()
                .any(|p| p.is_some()),
            "loop-header heuristic never applied"
        );
    }

    #[test]
    fn guard_heuristic_applies_to_guarded_use() {
        let (prog, analysis) = contexts(
            r#"
            int main() {
                int x = 9;
                int y = 0;
                if (x != 0) { y = 100 / x; }
                return y;
            }
            "#,
        );
        let preds = predictions(&prog, &analysis, Heuristic::Guard);
        assert!(
            preds.iter().any(|p| p.is_some()),
            "guard heuristic never applied: {preds:?}"
        );
    }

    #[test]
    fn btfnt_tracks_direction() {
        let (prog, analysis) = contexts(
            "int main() { int i = 0; while (i < 10) { i = i + 1; } return i; }",
        );
        let sites = prog.branch_sites();
        let backward: Vec<bool> = sites
            .iter()
            .map(|s| Btfnt.predict(&BranchCtx::new(&prog, &analysis, *s)))
            .collect();
        // rotated loop: the latch branch is backward => predicted taken
        assert!(backward.iter().any(|b| *b), "no backward branch: {backward:?}");
    }

    #[test]
    fn ordinals_are_dense() {
        for (i, h) in Heuristic::TABLE1_ORDER.iter().enumerate() {
            assert_eq!(h.ordinal(), i);
            assert!(!h.name().is_empty());
        }
    }
}
