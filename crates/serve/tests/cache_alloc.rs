//! Pins the serve cache's zero-allocation contract with a counting global
//! allocator (same pattern as `crates/nnet/tests/alloc_free.rs`): with a
//! caller-owned key buffer and a warmed cache, the shard hot path —
//! `cache_key_into` to build the key, `get` on a hit, and `insert` that
//! refreshes an existing entry — performs **zero** heap allocations per
//! lookup.
//!
//! One `#[test]` only: the counter is process-global, and a sibling test
//! allocating concurrently would make the delta meaningless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use esp_serve::cache::{cache_key_into, LruCache};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warmed_cache_hits_do_not_allocate() {
    // -- setup (allocates freely) ------------------------------------------
    let dim = 24;
    let keys = 64;
    let rows: Vec<(Vec<f64>, Vec<bool>)> = (0..keys)
        .map(|i| {
            (
                (0..dim).map(|j| ((i * 31 + j * 7) % 17) as f64 / 8.0 - 1.0).collect(),
                (0..dim).map(|j| (i + j) % 5 != 0).collect(),
            )
        })
        .collect();

    let mut cache = LruCache::new(keys);
    let mut key_buf: Vec<u8> = Vec::new();
    // Warm: populate every key (allocates slab slots and map keys once) and
    // size the reusable key buffer.
    for (i, (row, mask)) in rows.iter().enumerate() {
        cache_key_into(&mut key_buf, row, mask);
        cache.insert(&key_buf, i as f64 / keys as f64);
    }

    // -- measure -----------------------------------------------------------
    // The counter is process-global and the harness's main thread may
    // allocate concurrently, so take the minimum over a few attempts: a
    // genuine per-lookup allocation would show up in every one of them.
    let mut sink = 0.0;
    let mut min_delta = u64::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..10 {
            for (i, (row, mask)) in rows.iter().enumerate() {
                // The shard worker's exact sequence: build the key into the
                // reusable buffer, probe, and refresh-insert on occasion.
                cache_key_into(&mut key_buf, row, mask);
                sink += cache.get(&key_buf).expect("warmed key must hit");
                if i % 7 == 0 {
                    cache.insert(&key_buf, sink.fract());
                }
            }
        }
        min_delta = min_delta.min(allocations() - before);
        if min_delta == 0 {
            break;
        }
    }

    assert!(sink.is_finite());
    assert_eq!(
        min_delta, 0,
        "cache hot path allocated {min_delta} times in every one of 5 warmed-up sweeps"
    );
}
