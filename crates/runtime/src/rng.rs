//! Seeded pseudo-random number generation without external crates.
//!
//! [`Pcg32`] is the PCG-XSH-RR 64/32 generator (O'Neill 2014): 64-bit LCG
//! state, 32-bit output with a permuted xorshift + rotate. It is seeded
//! through [`SplitMix64`] so that nearby `u64` seeds still land in
//! well-separated streams. The API mirrors the subset of `rand` the
//! workspace used (`seed_from_u64`, `gen_range` over integer and float
//! ranges, `gen_bool`), so swapping the dependency out was a one-line import
//! change at each call site.

use std::ops::Range;

/// SplitMix64 — the canonical stateless seeder (Steele et al., "Fast
/// splittable pseudorandom number generators", OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32: small, fast, statistically solid, and — unlike
/// platform-dependent generators — guaranteed to produce the same stream for
/// the same seed everywhere, which the corpus generators depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MUL: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed deterministically from a single `u64` (state and stream are both
    /// derived through SplitMix64, matching `rand::SeedableRng`'s shape).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let initstate = sm.next_u64();
        let initseq = sm.next_u64();
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits (two 32-bit draws, high word
    /// first).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open range, like `rand`'s `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Unbiased draw in `[0, bound)` by rejection sampling on the widening
    /// 64-bit stream.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Scalars [`Pcg32::gen_range`] can draw uniformly.
pub trait UniformSample: Copy + PartialOrd {
    /// One uniform draw from `[lo, hi)`.
    fn sample_uniform(lo: Self, hi: Self, rng: &mut Pcg32) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform(lo: Self, hi: Self, rng: &mut Pcg32) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample_uniform(lo: Self, hi: Self, rng: &mut Pcg32) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Ranges [`Pcg32::gen_range`] can sample from. A single blanket impl (like
/// `rand`'s) so integer-literal ranges infer their type from the call site.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Pcg32) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut Pcg32) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_uniform(self.start, self.end, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams suspiciously correlated: {same}/64");
    }

    #[test]
    fn reference_stream_is_pinned() {
        // Pin the exact output so refactors can't silently change every
        // downstream seed-sensitive artifact (the corpus is generated from
        // this stream).
        let mut r = Pcg32::seed_from_u64(0);
        let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        assert_eq!(first, vec![0x9064_4221, 0x4618_e85f, 0x8f5b_d9cd, 0xaf2c_0306]);
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = Pcg32::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = r.gen_range(3..13usize);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|s| *s), "not all values hit: {seen:?}");
        for _ in 0..500 {
            let v = r.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&v));
        }
        for _ in 0..100 {
            let v = r.gen_range(-20..-10i64);
            assert!((-20..-10).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Pcg32::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn float_draws_are_in_unit_interval() {
        let mut r = Pcg32::seed_from_u64(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = Pcg32::seed_from_u64(0);
        let _ = r.gen_range(5..5i64);
    }
}
