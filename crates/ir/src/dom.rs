//! Dominator and post-dominator trees.
//!
//! Implemented with the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
//! Fast Dominance Algorithm"), which is easily fast enough for the block
//! counts in this study and is straightforward to verify against the naive
//! set-based definition (see the property tests).

use crate::cfg::Cfg;
use crate::program::BlockId;

const UNDEF: u32 = u32::MAX;

/// A dominator tree over one function's CFG (forward = dominators,
/// reverse = post-dominators).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `UNDEF` for roots and unreachable
    /// blocks.
    idom: Vec<u32>,
    /// Depth in the dominator tree (roots have depth 0).
    depth: Vec<u32>,
    /// Whether the block participates (is reachable in the traversal
    /// direction).
    covered: Vec<bool>,
}

/// Build adjacency in the traversal direction from an edge list.
///
/// Multiple roots (the post-dominator case: one per exit block) are joined
/// under a *virtual root* at index `n`; without it the Cooper–Harvey–Kennedy
/// `intersect` walk cannot converge between two different root trees (the
/// chains would cycle at the self-rooted exits forever).
fn compute(n: usize, roots: &[usize], edges: &[(usize, usize)]) -> DomTree {
    let vroot = n; // the virtual super-root
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        succ[u].push(v);
        pred[v].push(u);
    }

    // Reverse postorder from the roots; the virtual root gets number 0 and
    // every real node numbers from 1.
    let mut visited = vec![false; n];
    let mut post: Vec<usize> = Vec::with_capacity(n);
    for &r in roots {
        if visited[r] {
            continue;
        }
        visited[r] = true;
        let mut stack: Vec<(usize, usize)> = vec![(r, 0)];
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succ[b].len() {
                let nx = succ[b][*i];
                *i += 1;
                if !visited[nx] {
                    visited[nx] = true;
                    stack.push((nx, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
    }
    let mut rpo = post;
    rpo.reverse();
    let mut rpo_num = vec![UNDEF; n + 1];
    rpo_num[vroot] = 0;
    for (i, &b) in rpo.iter().enumerate() {
        rpo_num[b] = i as u32 + 1;
    }

    let mut idom = vec![UNDEF; n + 1];
    idom[vroot] = vroot as u32;
    for &r in roots {
        idom[r] = vroot as u32;
    }

    let intersect = |idom: &[u32], mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while rpo_num[a as usize] > rpo_num[b as usize] {
                a = idom[a as usize];
            }
            while rpo_num[b as usize] > rpo_num[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    };

    let is_root = {
        let mut m = vec![false; n];
        for &r in roots {
            m[r] = true;
        }
        m
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if is_root[b] {
                continue;
            }
            let mut new_idom = UNDEF;
            for &p in &pred[b] {
                if idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p as u32
                } else {
                    intersect(&idom, new_idom, p as u32)
                };
            }
            if new_idom != UNDEF && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    // Depths before erasing the virtual root (roots sit at depth 1, which
    // only matters relatively for the `dominates` climb).
    let mut depth = vec![0u32; n + 1];
    for &b in &rpo {
        if idom[b] != UNDEF {
            depth[b] = depth[idom[b] as usize] + 1;
        }
    }

    // Erase the virtual root from the public view.
    for x in idom.iter_mut() {
        if *x == vroot as u32 {
            *x = UNDEF;
        }
    }
    idom.truncate(n);
    depth.truncate(n);

    DomTree {
        idom,
        depth,
        covered: visited,
    }
}

impl DomTree {
    /// The dominator tree of `cfg` (rooted at the entry block).
    pub fn dominators(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let edges: Vec<(usize, usize)> = cfg.edges().map(|e| (e.from.index(), e.to.index())).collect();
        compute(n, &[0], &edges)
    }

    /// The post-dominator tree of `cfg` (rooted at the set of exit blocks,
    /// i.e. blocks with no successors).
    ///
    /// Blocks that cannot reach any exit (infinite loops) are uncovered:
    /// [`DomTree::dominates`] returns `false` for them except on identity.
    pub fn postdominators(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let edges: Vec<(usize, usize)> = cfg.edges().map(|e| (e.to.index(), e.from.index())).collect();
        let roots: Vec<usize> = (0..n).filter(|&b| cfg.succs(BlockId(b as u32)).is_empty()).collect();
        compute(n, &roots, &edges)
    }

    /// Immediate dominator of `b`, or `None` for roots and uncovered blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let v = self.idom[b.index()];
        (v != UNDEF).then_some(BlockId(v))
    }

    /// Whether `a` dominates `b` (reflexively: every block dominates itself).
    ///
    /// For a post-dominator tree this reads "a post-dominates b".
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.covered[a.index()] || !self.covered[b.index()] {
            return false;
        }
        let target = a.0;
        let mut cur = b.0;
        while self.depth[cur as usize] > self.depth[target as usize] {
            cur = self.idom[cur as usize];
            if cur == UNDEF {
                return false;
            }
        }
        cur == target
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `b` is covered by the traversal (reachable from the tree's
    /// roots in the traversal direction).
    pub fn is_covered(&self, b: BlockId) -> bool {
        self.covered[b.index()]
    }

    /// Depth of `b` in the tree (roots at depth 0).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::program::{Function, Lang};
    use crate::term::BranchOp;

    /// e(0) -> h(1); h -> body(2) | exit(3); body -> h
    fn simple_loop() -> Function {
        let mut b = FunctionBuilder::new("l", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let h = b.new_block();
        let body = b.new_block();
        let x = b.new_block();
        b.push_load_imm(e, c, 0);
        b.set_fallthrough(e, h);
        b.set_cond_branch(h, BranchOp::Bne, c, None, body, x);
        b.set_jump(body, h);
        b.set_return(x, None);
        b.finish()
    }

    #[test]
    fn loop_dominators() {
        let f = simple_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(1)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.strictly_dominates(BlockId(0), BlockId(3)));
        assert!(!dom.strictly_dominates(BlockId(0), BlockId(0)));
    }

    #[test]
    fn loop_postdominators() {
        let f = simple_loop();
        let cfg = Cfg::new(&f);
        let pdom = DomTree::postdominators(&cfg);
        // exit (3) post-dominates everything
        for b in 0..4 {
            assert!(pdom.dominates(BlockId(3), BlockId(b)), "exit pdom b{b}");
        }
        // loop head (1) post-dominates entry and body
        assert!(pdom.dominates(BlockId(1), BlockId(0)));
        assert!(pdom.dominates(BlockId(1), BlockId(2)));
        // body does not post-dominate the head
        assert!(!pdom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn diamond_neither_arm_postdominates() {
        let mut b = FunctionBuilder::new("d", 0, Lang::C);
        let c = b.fresh_reg();
        let e = b.entry_block();
        let t = b.new_block();
        let n = b.new_block();
        let x = b.new_block();
        b.push_load_imm(e, c, 1);
        b.set_cond_branch(e, BranchOp::Bne, c, None, t, n);
        b.set_jump(t, x);
        b.set_fallthrough(n, x);
        b.set_return(x, None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::postdominators(&cfg);
        assert!(dom.dominates(BlockId(0), BlockId(1)));
        assert!(dom.dominates(BlockId(0), BlockId(2)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!pdom.dominates(BlockId(1), BlockId(0)));
        assert!(!pdom.dominates(BlockId(2), BlockId(0)));
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
    }

    #[test]
    fn infinite_loop_is_uncovered_by_postdom() {
        // entry -> spin; spin -> spin  (no exits reachable from spin)
        let mut b = FunctionBuilder::new("inf", 0, Lang::C);
        let e = b.entry_block();
        let spin = b.new_block();
        b.set_fallthrough(e, spin);
        b.set_jump(spin, spin);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let pdom = DomTree::postdominators(&cfg);
        assert!(!pdom.is_covered(BlockId(1)));
        assert!(!pdom.dominates(BlockId(0), BlockId(1)));
        assert!(pdom.dominates(BlockId(1), BlockId(1)), "identity still holds");
    }
}
