//! Property tests for the feature encoding: stable dimensionality, valid
//! one-hots and consistent masking for arbitrary feature records.

use esp_core::{encode, FeatureSet, ENCODED_DIM};
use esp_core::{BranchFeatures, SuccessorFeatures};
use esp_ir::term::TermKind;
use esp_ir::{BranchOp, Lang, Opcode, ProcKind};
use proptest::prelude::*;

fn branch_op() -> impl Strategy<Value = BranchOp> {
    (0..BranchOp::ALL.len()).prop_map(|i| BranchOp::ALL[i])
}

fn opcode() -> impl Strategy<Value = Option<Opcode>> {
    prop_oneof![
        Just(None),
        (0..Opcode::ALL.len()).prop_map(|i| Some(Opcode::ALL[i])),
    ]
}

fn term_kind() -> impl Strategy<Value = TermKind> {
    (0..TermKind::ALL.len()).prop_map(|i| TermKind::ALL[i])
}

fn succ() -> impl Strategy<Value = SuccessorFeatures> {
    (
        any::<bool>(),
        any::<bool>(),
        term_kind(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(dominates, postdominates, ends_with, loop_header, back_edge, exit_edge, ubd, call)| {
                SuccessorFeatures {
                    dominates,
                    postdominates,
                    ends_with,
                    loop_header,
                    back_edge,
                    exit_edge,
                    use_before_def: ubd,
                    has_call: call,
                }
            },
        )
}

fn features() -> impl Strategy<Value = BranchFeatures> {
    (
        (branch_op(), any::<bool>(), opcode(), opcode(), any::<bool>()),
        (opcode(), any::<bool>(), any::<bool>(), any::<bool>()),
        (0u8..3),
        succ(),
        succ(),
    )
        .prop_map(
            |(
                (br_opcode, backward, operand_opcode, ra_opcode, ra_meaningful),
                (rb_opcode, rb_meaningful, loop_header, fortran),
                pk,
                taken,
                not_taken,
            )| BranchFeatures {
                br_opcode,
                backward,
                operand_opcode,
                ra_opcode,
                ra_meaningful,
                rb_opcode,
                rb_meaningful,
                loop_header,
                lang: if fortran { Lang::Fort } else { Lang::C },
                proc_kind: match pk {
                    0 => ProcKind::Leaf,
                    1 => ProcKind::NonLeaf,
                    _ => ProcKind::CallSelf,
                },
                taken,
                not_taken,
            },
        )
}

fn feature_set() -> impl Strategy<Value = FeatureSet> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(opcode_features, context_features, successor_features)| FeatureSet {
            opcode_features,
            context_features,
            successor_features,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encoding_dimension_is_constant(f in features(), set in feature_set()) {
        let (v, mask) = encode(&f, &set);
        prop_assert_eq!(v.len(), ENCODED_DIM);
        prop_assert_eq!(mask.len(), ENCODED_DIM);
        prop_assert!(v.iter().all(|x| x.is_finite()));
        prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)), "raw encoding is 0/1");
    }

    #[test]
    fn onehot_blocks_sum_to_one(f in features()) {
        let (v, _) = encode(&f, &FeatureSet::default());
        let nb = BranchOp::ALL.len();
        let slot = Opcode::ALL.len() + 1;
        prop_assert_eq!(v[..nb].iter().sum::<f64>(), 1.0);
        let mut off = nb + 1;
        for _ in 0..3 {
            prop_assert_eq!(v[off..off + slot].iter().sum::<f64>(), 1.0);
            off += slot;
        }
        // proc kind one-hot
        let pk_off = off + 2;
        prop_assert_eq!(v[pk_off..pk_off + 3].iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn disabled_groups_have_fully_false_masks(f in features()) {
        let set = FeatureSet { opcode_features: false, context_features: false, successor_features: false };
        let (_, mask) = encode(&f, &set);
        prop_assert!(mask.iter().all(|m| !m));
    }

    #[test]
    fn masks_depend_only_on_meaningfulness_not_values(f in features()) {
        let (_, m1) = encode(&f, &FeatureSet::default());
        let mut altered = f;
        altered.backward = !altered.backward;
        altered.taken.has_call = !altered.taken.has_call;
        let (_, m2) = encode(&altered, &FeatureSet::default());
        prop_assert_eq!(m1, m2, "mask must not depend on feature *values*");
    }
}
