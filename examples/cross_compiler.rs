//! The Table 7 study on one program: how the same source behaves under four
//! compiler configurations (standard `-O`, modest unrolling, GEM-style
//! aggressive unrolling, and a gcc-like config without if-conversion), plus
//! the MIPS-flavoured backend of the cross-architecture study.
//!
//! ```text
//! cargo run --release --example cross_compiler [program]
//! ```

use esp_repro::corpus::suite;
use esp_repro::heur::{perfect_predict, Aphc, BranchCtx, Btfnt};
use esp_repro::ir::ProgramAnalysis;
use esp_repro::lang::CompilerConfig;

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "espresso".to_string());
    let all = suite();
    let bench = all
        .iter()
        .find(|b| b.name == target)
        .unwrap_or_else(|| panic!("unknown benchmark `{target}`"));

    let mut configs = CompilerConfig::table7_suite().to_vec();
    configs.push(CompilerConfig::mips_ref());

    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "compiler", "sites", "dyn cond", "%taken", "BTFNT", "APHC", "perfect"
    );
    for cfg in &configs {
        let prog = bench.compile(cfg).expect("compiles");
        let analysis = ProgramAnalysis::analyze(&prog);
        let profile = esp_repro::corpus::profile(&prog).expect("runs");
        let aphc = Aphc::table1_order();

        let mut btfnt = 0.0f64;
        let mut heur = 0.0f64;
        let mut perf = 0.0f64;
        let mut total = 0u64;
        for site in prog.branch_sites() {
            let Some(c) = profile.counts(site) else { continue };
            total += c.executed;
            let ctx = BranchCtx::new(&prog, &analysis, site);
            let chg = |p: Option<bool>| match p {
                Some(true) => (c.executed - c.taken) as f64,
                Some(false) => c.taken as f64,
                None => c.executed as f64 / 2.0,
            };
            btfnt += chg(Some(Btfnt.predict(&ctx)));
            heur += chg(aphc.predict(&ctx));
            perf += chg(perfect_predict(&profile, site));
        }
        let pct = |m: f64| 100.0 * m / total.max(1) as f64;
        println!(
            "{:<14} {:>8} {:>10} {:>9.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            cfg.name,
            prog.branch_sites().len(),
            total,
            100.0 * profile.overall_taken_fraction().unwrap_or(0.0),
            pct(btfnt),
            pct(heur),
            pct(perf),
        );
    }

    println!(
        "\nNote how unrolling (gem) shrinks the dynamic conditional-branch count and\n\
         shifts the branch mix — the effect behind the paper's Table 7 warning that\n\
         fixed heuristic orderings are compiler-sensitive."
    );
}
