//! Quality-side ablations for the design choices called out in DESIGN.md:
//!
//! * loss function — the paper's linear misprediction-cost loss vs SSE;
//! * hidden width — 0 (linear model) / 5 / 10 / 20 units;
//! * corpus size — 8 vs 23 C programs (the paper's §3.1.2 observation that
//!   ESP only pulled ahead of the heuristics once the corpus grew);
//! * learner — neural network vs decision tree (§3.1.2 "comparable");
//! * feature groups — dropping opcode / context / successor features.
//!
//! Each variant reports the mean leave-one-out miss rate over a fixed set of
//! evaluation programs. Run with `--quick` for a fast sanity pass and
//! `--threads N` to cap the worker count (`0` = one per core; results are
//! identical at every thread count).

use esp_core::{leave_one_out, EspConfig, FeatureSet, Learner, TrainingProgram};
use esp_eval::{miss_rate, Prediction, SuiteData};
use esp_ir::Lang;
use esp_lang::CompilerConfig;
use esp_nnet::{LossKind, MlpConfig, TreeConfig};

fn mlp(hidden: usize, loss: LossKind, quick: bool) -> MlpConfig {
    MlpConfig {
        hidden,
        loss,
        max_epochs: if quick { 40 } else { 150 },
        patience: if quick { 10 } else { 25 },
        restarts: 1,
        ..MlpConfig::default()
    }
}

/// Mean leave-one-out miss rate: for every index in `targets` (positions
/// into `pool`), train on `pool` minus that program and score it.
fn cv_miss(suite: &SuiteData, pool: &[usize], targets: &[usize], cfg: &EspConfig) -> f64 {
    let group: Vec<TrainingProgram<'_>> = pool
        .iter()
        .map(|&i| {
            let b = &suite.benches[i];
            TrainingProgram {
                prog: &b.prog,
                analysis: &b.analysis,
                profile: &b.profile,
            }
        })
        .collect();
    let mut rates = Vec::new();
    for &t in targets {
        let fold = pool.iter().position(|&i| i == t).expect("target in pool");
        let model = leave_one_out(&group, fold, cfg);
        let b = &suite.benches[t];
        rates.push(miss_rate(b, |site| {
            Prediction::from(Some(model.predict_taken(&b.prog, &b.analysis, site)))
        }));
    }
    rates.iter().sum::<f64>() / rates.len().max(1) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(0);
    eprintln!("building + profiling the corpus…");
    let suite = SuiteData::build_with_threads(&CompilerConfig::default(), threads);

    let c_programs = suite.lang_indices(Lang::C);
    // Evaluate every variant on the same targets: the first 8 C programs.
    let targets: Vec<usize> = c_programs.iter().copied().take(8).collect();
    let small_pool = targets.clone();
    let full_pool = c_programs.clone();

    let net = |hidden: usize, loss: LossKind| EspConfig {
        learner: Learner::Net(mlp(hidden, loss, quick)),
        features: FeatureSet::default(),
        threads,
        ..EspConfig::default()
    };

    println!("Ablation study (mean leave-one-out miss rate over {} C programs)\n", targets.len());

    println!("-- loss function (hidden = 10, corpus = 23 C programs) --");
    for (name, loss) in [("linear (paper)", LossKind::Linear), ("sse", LossKind::Sse)] {
        let m = cv_miss(&suite, &full_pool, &targets, &net(10, loss));
        println!("  {name:<16} {:.1}%", m * 100.0);
    }

    println!("\n-- hidden width (linear loss, corpus = 23 C programs) --");
    for hidden in [0usize, 5, 10, 20] {
        let m = cv_miss(&suite, &full_pool, &targets, &net(hidden, LossKind::Linear));
        println!("  hidden = {hidden:<3} {:.1}%", m * 100.0);
    }

    println!("\n-- corpus size (the paper's 8-vs-23 observation) --");
    let m8 = cv_miss(&suite, &small_pool, &targets, &net(10, LossKind::Linear));
    let m23 = cv_miss(&suite, &full_pool, &targets, &net(10, LossKind::Linear));
    println!("  corpus =  8 C programs: {:.1}%", m8 * 100.0);
    println!("  corpus = 23 C programs: {:.1}%", m23 * 100.0);

    println!("\n-- learner (corpus = 23 C programs) --");
    let mt = cv_miss(
        &suite,
        &full_pool,
        &targets,
        &EspConfig {
            learner: Learner::Tree(TreeConfig::default()),
            features: FeatureSet::default(),
            threads,
            ..EspConfig::default()
        },
    );
    let mn = cv_miss(&suite, &full_pool, &targets, &net(10, LossKind::Linear));
    println!("  neural net:    {:.1}%", mn * 100.0);
    println!("  decision tree: {:.1}%", mt * 100.0);

    println!("\n-- feature groups (hidden = 10, corpus = 23 C programs) --");
    let variants = [
        ("all features", FeatureSet::default()),
        (
            "no opcode features",
            FeatureSet {
                opcode_features: false,
                ..FeatureSet::default()
            },
        ),
        (
            "no context features",
            FeatureSet {
                context_features: false,
                ..FeatureSet::default()
            },
        ),
        (
            "no successor features",
            FeatureSet {
                successor_features: false,
                ..FeatureSet::default()
            },
        ),
    ];
    for (name, features) in variants {
        let cfg = EspConfig {
            learner: Learner::Net(mlp(10, LossKind::Linear, quick)),
            features,
            threads,
            ..EspConfig::default()
        };
        let m = cv_miss(&suite, &full_pool, &targets, &cfg);
        println!("  {name:<24} {:.1}%", m * 100.0);
    }

    // The Ball–Larus order experiment (§2.1): how much does the fixed
    // order matter, and can a greedy search rediscover a good one?
    println!("\n-- APHC heuristic-order sensitivity (whole corpus) --");
    let runs: Vec<esp_heur::order::Run<'_>> = suite
        .benches
        .iter()
        .map(|b| (&b.prog, &b.analysis, &b.profile))
        .collect();
    let table1 = esp_heur::evaluate_order(&esp_heur::Heuristic::TABLE1_ORDER, &runs);
    println!("  Table 1 order:        {:.1}%", table1 * 100.0);
    let greedy = esp_heur::greedy_order(&runs);
    let greedy_rate = esp_heur::evaluate_order(&greedy, &runs);
    let names: Vec<&str> = greedy.iter().map(|h| h.name()).collect();
    println!("  greedy order:         {:.1}%   [{}]", greedy_rate * 100.0, names.join(" > "));
    let reversed: Vec<_> = esp_heur::Heuristic::TABLE1_ORDER.iter().rev().copied().collect();
    println!(
        "  reversed Table 1:     {:.1}%",
        esp_heur::evaluate_order(&reversed, &runs) * 100.0
    );
}
