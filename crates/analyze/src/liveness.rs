//! Backward register liveness and dead-definition detection.
//!
//! A register is live at a point when some path from that point reads it
//! before redefining it. The analysis runs on the generic solver in
//! [`Direction::Backward`](crate::solver::Direction): the solver's `input`
//! is each block's live-*out* set and its `output` the live-*in* set.
//!
//! [`dead_defs`] replays each block against its live-out set to find
//! instruction-level definitions whose value is never read — the linter's
//! dead-store diagnostic. `CMov` is handled soundly for free because its
//! `uses()` include the destination (a conditional move reads the old value
//! when the condition is zero).

use esp_ir::cfg::{Cfg, Edge};
use esp_ir::term::Terminator;
use esp_ir::{BlockId, Function, Reg};

use crate::solver::{solve, Analysis, Direction, Solution};

struct Liveness<'a> {
    func: &'a Function,
}

impl Analysis for Liveness<'_> {
    type State = Vec<bool>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> Vec<bool> {
        vec![false; self.func.num_regs as usize]
    }

    fn join(&self, into: &mut Vec<bool>, from: &Vec<bool>) {
        for (a, b) in into.iter_mut().zip(from) {
            *a |= *b;
        }
    }

    fn edge_state(&self, _edge: &Edge, out: &Vec<bool>) -> Option<Vec<bool>> {
        Some(out.clone())
    }

    fn transfer(&self, block: BlockId, live: &mut Vec<bool>) {
        let bb = self.func.block(block);
        if let Terminator::Call { dst: Some(d), .. } = &bb.term {
            live[d.index()] = false;
        }
        for u in bb.term.uses() {
            live[u.index()] = true;
        }
        for insn in bb.insns.iter().rev() {
            if let Some(d) = insn.def() {
                live[d.index()] = false;
            }
            for u in insn.uses() {
                live[u.index()] = true;
            }
        }
    }
}

/// Compute liveness for `func`: `input[b]` is block `b`'s live-out set,
/// `output[b]` its live-in set (both indexed by register).
pub fn liveness(func: &Function, cfg: &Cfg) -> Solution<Vec<bool>> {
    solve(cfg, &Liveness { func })
}

/// An instruction whose register definition is never read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadDef {
    /// Block containing the dead definition.
    pub block: BlockId,
    /// Instruction index within the block.
    pub insn: usize,
    /// The register whose value is dead.
    pub reg: Reg,
}

/// Find instruction definitions that no later read observes. Blocks whose
/// live-out is unknown (no path to an exit) are skipped — a store on a path
/// that never returns is not evidence of anything.
pub fn dead_defs(func: &Function, sol: &Solution<Vec<bool>>) -> Vec<DeadDef> {
    let mut out = Vec::new();
    for bi in 0..func.num_blocks() {
        let Some(live_out) = &sol.input[bi] else {
            continue;
        };
        let block = BlockId(bi as u32);
        let bb = func.block(block);
        let mut live = live_out.clone();
        if let Terminator::Call { dst: Some(d), .. } = &bb.term {
            live[d.index()] = false;
        }
        for u in bb.term.uses() {
            live[u.index()] = true;
        }
        for (idx, insn) in bb.insns.iter().enumerate().rev() {
            if let Some(d) = insn.def() {
                if !live[d.index()] {
                    out.push(DeadDef {
                        block,
                        insn: idx,
                        reg: d,
                    });
                }
                live[d.index()] = false;
            }
            for u in insn.uses() {
                live[u.index()] = true;
            }
        }
    }
    out.sort_by_key(|d| (d.block.0, d.insn));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_ir::builder::FunctionBuilder;
    use esp_ir::insn::AluOp;
    use esp_ir::Lang;

    #[test]
    fn overwritten_def_is_dead_final_def_is_not() {
        let mut b = FunctionBuilder::new("t", 0, Lang::C);
        let r = b.fresh_reg();
        let e = b.entry_block();
        b.push_load_imm(e, r, 1); // dead: overwritten below
        b.push_load_imm(e, r, 2); // live: returned
        b.set_return(e, Some(r));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dead = dead_defs(&f, &liveness(&f, &cfg));
        assert_eq!(
            dead,
            vec![DeadDef {
                block: BlockId(0),
                insn: 0,
                reg: r
            }]
        );
    }

    #[test]
    fn value_live_across_blocks_is_not_dead() {
        let mut b = FunctionBuilder::new("t", 0, Lang::C);
        let r = b.fresh_reg();
        let s = b.fresh_reg();
        let e = b.entry_block();
        let x = b.new_block();
        b.push_load_imm(e, r, 7);
        b.set_fallthrough(e, x);
        b.push_alu_imm(x, AluOp::Add, s, r, 1);
        b.set_return(x, Some(s));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dead = dead_defs(&f, &liveness(&f, &cfg));
        assert!(dead.is_empty(), "got {dead:?}");
    }

    #[test]
    fn cmov_keeps_prior_def_alive() {
        let mut b = FunctionBuilder::new("t", 1, Lang::C);
        let c = esp_ir::Reg(0); // param: condition
        let r = b.fresh_reg();
        let s = b.fresh_reg();
        let e = b.entry_block();
        b.push_load_imm(e, r, 1); // NOT dead: CMov may keep it
        b.push_load_imm(e, s, 2);
        b.push(
            e,
            esp_ir::insn::Insn::CMov {
                c,
                dst: r,
                src: s,
            },
        );
        b.set_return(e, Some(r));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dead = dead_defs(&f, &liveness(&f, &cfg));
        assert!(dead.is_empty(), "got {dead:?}");
    }
}
