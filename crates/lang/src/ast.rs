//! The shared abstract syntax tree produced by both the Cee and Fort front
//! ends.

use esp_ir::Lang;

/// Source-level types.
///
/// Pointers are word-addressed and carry their element type so loads know
/// whether they produce integers or floats. Following 1990s C practice (and
/// because the Pointer heuristic must be detectable from the *binary* level,
/// not the source level), integers and pointers are mutually assignable and
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (also booleans).
    Int,
    /// Double-precision float.
    Float,
    /// Pointer to integer words.
    PtrInt,
    /// Pointer to float words.
    PtrFloat,
}

impl Type {
    /// Whether the type is integer-compatible (integers and both pointer
    /// kinds).
    pub fn is_intlike(self) -> bool {
        !matches!(self, Type::Float)
    }

    /// Whether the type is a pointer.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::PtrInt | Type::PtrFloat)
    }

    /// Element type of a pointer (what `p[i]` yields).
    pub fn elem(self) -> Option<Type> {
        match self {
            Type::PtrInt => Some(Type::Int),
            Type::PtrFloat => Some(Type::Float),
            _ => None,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Short-circuit `&&`
    And,
    /// Short-circuit `||`
    Or,
}

impl BinOp {
    /// Whether this is a comparison producing a boolean integer.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this is a short-circuit logical operator.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (int or float).
    Neg,
    /// Logical not (int): `!e` is `e == 0`.
    Not,
    /// Float absolute value (`fabs` / `ABS`).
    Abs,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// The null pointer literal.
    Null,
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation (including short-circuit logicals).
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `p[i]` — load through a pointer.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// `alloc(n)` — allocate `n` fresh heap words, yielding a pointer whose
    /// element type is given.
    Alloc(Type, Box<Expr>),
    /// Type cast: `(int) e`, `(float) e`, `(int*) e`, `(float*) e` in Cee;
    /// `INT(e)` / `REAL(e)` in Fort.
    Cast(Type, Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// `p[i]` — store through a pointer.
    Index(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration with optional initializer (uninitialised scalars
    /// read as zero; array declarations allocate).
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initialiser.
        init: Option<Expr>,
    },
    /// Assignment.
    Assign(LValue, Expr),
    /// Two-armed conditional.
    If {
        /// Condition (integer-compatible).
        cond: Expr,
        /// Then branch.
        then_blk: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_blk: Vec<Stmt>,
    },
    /// Pre-test loop.
    While {
        /// Continuation condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Post-test loop (`do { … } while (cond)`), also produced by the
    /// loop-rotation pass.
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Continuation condition.
        cond: Expr,
    },
    /// Counted loop (`for` in Cee, `DO` in Fort): `var = from; while (var <=
    /// to) { body; var += step; }` with `step` a nonzero constant.
    For {
        /// Induction variable (must be declared already or is declared
        /// implicitly as `Int`).
        var: String,
        /// Initial value.
        from: Expr,
        /// Inclusive upper bound (lower bound when stepping down).
        to: Expr,
        /// Constant step; negative steps count down.
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Multi-way dispatch on an integer selector; cases carry constant
    /// labels.
    Switch {
        /// Selector expression.
        selector: Expr,
        /// `(label, body)` cases.
        cases: Vec<(i64, Vec<Stmt>)>,
        /// Default body (empty when absent).
        default: Vec<Stmt>,
    },
    /// Function return.
    Return(Option<Expr>),
    /// Exit the innermost loop.
    Break,
    /// Skip to the next iteration of the innermost loop.
    Continue,
    /// Expression evaluated for side effects (a call).
    ExprStmt(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Return type (`None` = void subroutine).
    pub ret: Option<Type>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source language.
    pub lang: Lang,
}

/// A whole source program.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Program name.
    pub name: String,
    /// Function definitions; one must be called `main` and take no
    /// parameters.
    pub funcs: Vec<FuncDecl>,
}

impl Module {
    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::Int.is_intlike());
        assert!(Type::PtrInt.is_intlike());
        assert!(!Type::Float.is_intlike());
        assert!(Type::PtrFloat.is_ptr());
        assert!(!Type::Int.is_ptr());
        assert_eq!(Type::PtrFloat.elem(), Some(Type::Float));
        assert_eq!(Type::Int.elem(), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_cmp());
        assert!(!BinOp::Add.is_cmp());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }
}
