//! Compare every predictor of the paper's Table 4 on one program: BTFNT,
//! the Ball–Larus heuristics in fixed order (APHC), Dempster–Shafer
//! combination (DSHC), ESP, and the perfect static predictor.
//!
//! ```text
//! cargo run --release --example compare_predictors [program]
//! ```

use esp_repro::corpus::suite;
use esp_repro::esp::{EspConfig, EspModel, Learner, TrainingProgram};
use esp_repro::exec::BranchCounts;
use esp_repro::heur::{perfect_predict, Aphc, BranchCtx, Btfnt, Dshc, HeuristicRates};
use esp_repro::ir::{Lang, ProgramAnalysis};
use esp_repro::lang::CompilerConfig;
use esp_repro::nnet::MlpConfig;

fn misses(counts: &BranchCounts, pred: Option<bool>) -> f64 {
    match pred {
        Some(true) => (counts.executed - counts.taken) as f64,
        Some(false) => counts.taken as f64,
        None => counts.executed as f64 / 2.0, // coin flip for uncovered
    }
}

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "espresso".to_string());
    let cfg = CompilerConfig::default();
    let all = suite();
    let bench = all
        .iter()
        .find(|b| b.name == target)
        .unwrap_or_else(|| panic!("unknown benchmark `{target}`"));

    println!("compiling + profiling `{target}`…");
    let prog = bench.compile(&cfg).expect("compiles");
    let analysis = ProgramAnalysis::analyze(&prog);
    let profile = esp_repro::corpus::profile(&prog).expect("runs");

    // Train ESP on all other programs of the same language.
    println!("training ESP on the rest of the {} corpus…", bench.lang);
    let mut owned = Vec::new();
    for other in all.iter().filter(|b| b.lang == bench.lang && b.name != target) {
        let p = other.compile(&cfg).expect("compiles");
        let a = ProgramAnalysis::analyze(&p);
        let pr = esp_repro::corpus::profile(&p).expect("runs");
        owned.push((p, a, pr));
    }
    let corpus: Vec<TrainingProgram<'_>> = owned
        .iter()
        .map(|(p, a, pr)| TrainingProgram {
            prog: p,
            analysis: a,
            profile: pr,
        })
        .collect();
    let model = EspModel::train(
        &corpus,
        &EspConfig {
            learner: Learner::Net(MlpConfig {
                hidden: 10,
                max_epochs: 120,
                restarts: 1,
                ..MlpConfig::default()
            }),
            ..EspConfig::default()
        },
    );

    // Measure DSHC(Ours) hit rates on the training corpus only (no peeking).
    let rates_ours = esp_repro::heur::measure_rates(
        owned.iter().map(|(p, a, pr)| (p, a, pr)),
    );

    let aphc = Aphc::table1_order();
    let dshc_bl = Dshc::new(HeuristicRates::ball_larus_mips());
    let dshc_ours = Dshc::new(rates_ours);

    let mut m = [0.0f64; 6];
    let mut total = 0u64;
    for site in prog.branch_sites() {
        let Some(counts) = profile.counts(site) else {
            continue;
        };
        total += counts.executed;
        let ctx = BranchCtx::new(&prog, &analysis, site);
        m[0] += misses(counts, Some(Btfnt.predict(&ctx)));
        m[1] += misses(counts, aphc.predict(&ctx));
        m[2] += misses(counts, dshc_bl.predict(&ctx));
        m[3] += misses(counts, dshc_ours.predict(&ctx));
        m[4] += misses(counts, Some(model.predict_taken(&prog, &analysis, site)));
        m[5] += misses(counts, perfect_predict(&profile, site));
    }

    println!("\nmiss rates on `{target}` ({total} executed conditional branches):");
    for (name, misses) in [
        ("BTFNT", m[0]),
        ("APHC (Ball-Larus order)", m[1]),
        ("DSHC (B&L rates)", m[2]),
        ("DSHC (measured rates)", m[3]),
        ("ESP (this paper)", m[4]),
        ("perfect static", m[5]),
    ] {
        println!("  {name:<26} {:5.1}%", 100.0 * misses / total as f64);
    }
    let _ = Lang::C;
}
