//! Named metrics: atomic [`Counter`]s, [`Gauge`]s, and log-bucketed
//! [`Log2Histogram`]s in a [`MetricsRegistry`] with a Prometheus-style text
//! exposition encoder.
//!
//! The histogram is the one that grew up in `esp-serve`: values land in
//! bucket `bit_length(v)` (bucket `i` spans `[2^(i-1), 2^i)`, bucket 0 is
//! exactly 0) and quantiles are answered as the upper bound of the first
//! bucket whose cumulative count crosses the target rank — always within 2×
//! of the true value, with 64 fixed buckets and no samples retained.
//!
//! Registration is get-or-create by name behind a mutex; recording on the
//! returned `Arc` handles is pure relaxed atomics. Callers register once at
//! setup and record in loops.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an f64 (stored as bits in an atomic, so sets are
/// lock-free; last writer wins).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram of non-negative integer observations
/// (microseconds, batch sizes, …).
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize; // bit length; 0 → 0
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile estimate: the upper bound (`2^i − 1`) of the first bucket
    /// whose cumulative count reaches `ceil(q · count)`. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        log2_counts_quantile(&self.bucket_counts(), q)
    }

    fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Quantile over an array of log2 bucket counts (bucket `i` holds values of
/// bit length `i`): the upper bound (`2^i − 1`) of the first bucket whose
/// cumulative count reaches `ceil(q · total)`. Returns 0 when empty. Shared
/// by [`Log2Histogram`] and the sliding-window merge in [`crate::window`].
pub fn log2_counts_quantile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 };
        }
    }
    u64::MAX
}

/// A registry of named metrics. Cheap to clone handles out of; rendering
/// walks the name-sorted maps so the exposition is deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Log2Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Log2Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Log2Histogram::new())),
        )
    }

    /// Render every metric in Prometheus text exposition format:
    /// `# TYPE` lines, counters/gauges as bare samples, histograms as
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().expect("counter map poisoned").iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in self.gauges.lock().expect("gauge map poisoned").iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
        {
            let counts = h.bucket_counts();
            let last = counts
                .iter()
                .rposition(|&c| c > 0)
                .map(|i| i + 1)
                .unwrap_or(1);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &c) in counts.iter().take(last).enumerate() {
                cum += c;
                let le = if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("depth");
        g.set(1.5);
        assert_eq!(r.gauge("depth").get(), 1.5);
    }

    #[test]
    fn histogram_matches_serve_bucketing() {
        let h = Log2Histogram::new();
        for us in [10u64, 12, 14, 900, 1000] {
            h.record(us);
        }
        // identical semantics to the original esp-serve histogram
        assert_eq!(h.quantile(0.50), 15);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1936);
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn exposition_contains_all_families() {
        let r = MetricsRegistry::new();
        r.counter("esp_test_events_total").add(4);
        r.gauge("esp_test_ratio").set(0.25);
        let h = r.histogram("esp_test_us");
        h.record(3);
        h.record(100);
        let text = r.render_text();
        assert!(text.contains("# TYPE esp_test_events_total counter"));
        assert!(text.contains("esp_test_events_total 4"));
        assert!(text.contains("# TYPE esp_test_ratio gauge"));
        assert!(text.contains("esp_test_ratio 0.25"));
        assert!(text.contains("# TYPE esp_test_us histogram"));
        // 3 has bit length 2 → bucket 2 (le=3); 100 bit length 7 → le=127
        assert!(text.contains("esp_test_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("esp_test_us_bucket{le=\"127\"} 2"));
        assert!(text.contains("esp_test_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("esp_test_us_sum 103"));
        assert!(text.contains("esp_test_us_count 2"));
    }

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b_total").inc();
        r.counter("a_total").inc();
        let text = r.render_text();
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b);
        assert_eq!(text, r.render_text());
    }
}
