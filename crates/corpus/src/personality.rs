//! Per-benchmark generation knobs.

/// Generation knobs for one benchmark, tuned from the paper's Table 3 so the
/// suite spans comparable behaviours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Personality {
    /// How many generated worker functions (besides `main`).
    pub funcs: u32,
    /// Outer repetitions of the whole phase schedule in `main` — the main
    /// lever on dynamic instruction counts.
    pub main_iters: i64,
    /// Typical inner-loop trip count; long loops push the overall %taken up
    /// (each trip is a taken latch branch).
    pub loop_trip: i64,
    /// Relative weight of pointer idioms (lists, null guards). Zero for
    /// Fortran programs, matching "pointers are very rare in FORTRAN".
    pub ptr_weight: u32,
    /// Relative weight of call-flavoured idioms (error paths that call).
    pub call_weight: u32,
    /// Relative weight of floating-point kernels.
    pub float_weight: u32,
    /// Relative weight of switch/dispatch idioms.
    pub switch_weight: u32,
    /// Relative weight of recursive idioms.
    pub rec_weight: u32,
    /// Relative weight of data-dependent (hard-to-predict) branch idioms.
    pub noise_weight: u32,
    /// Denominator of the rare-error probability (an error fires about once
    /// per `error_rarity` inner iterations).
    pub error_rarity: i64,
}

impl Default for Personality {
    fn default() -> Self {
        Personality {
            funcs: 10,
            main_iters: 35,
            loop_trip: 40,
            ptr_weight: 2,
            call_weight: 2,
            float_weight: 1,
            switch_weight: 1,
            rec_weight: 1,
            noise_weight: 2,
            error_rarity: 64,
        }
    }
}
