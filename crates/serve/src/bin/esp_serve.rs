//! `esp-serve` — serve trained `.espm` models over TCP.
//!
//! ```text
//! esp-serve --model PATH                 [--addr HOST:PORT] [--shards N] [--cache N]
//! esp-serve --registry DIR --name M[@V][,M2[@V2]…] [--reload-watch MS] [--addr …] …
//! esp-serve --synthetic DIM,HIDDEN,SEED  [--addr …] …
//! ```
//!
//! Exactly one model source is required. Both artifact kinds load: f64
//! models and quantized f32 models. `--precision f32|f64` overrides the
//! artifact's native precision — an f64 artifact is quantized at load when
//! `f32` is asked for; asking an f32 artifact for `f64` is an error.
//! `--addr` defaults to `127.0.0.1:7871`; port `0` picks an ephemeral port
//! (the bound address is printed either way). `--shards 0` (default) runs
//! one shard worker per core, each owning its slice of the LRU cache
//! (`--threads` is accepted as an alias); `--cache` is the total LRU
//! capacity in entries, split across shards (`0` disables);
//! `--predict-chunk` is the rows-per-batch chunk a shard computes misses
//! in (default 32). The process runs until a client sends `SHUTDOWN` (see
//! `esp-client`).
//!
//! The registry form serves every listed name at once (clients pick with
//! the protocol's model selector; the first name is the default). A bare
//! name serves its newest version and `NAME@V` pins one.
//! `--reload-watch MS` polls the registry at that interval and atomically
//! hot-swaps any unpinned name whose newest version advanced — in-flight
//! requests finish on the model they resolved; zero requests drop.
//!
//! Observability: `--trace-out FILE` enables span tracing and writes a
//! Perfetto-loadable trace on shutdown; `--metrics-out FILE` writes the
//! server's Prometheus text exposition on shutdown (it is also served live
//! by the `STATS` opcode). `--http-addr HOST:PORT` additionally starts the
//! HTTP telemetry sidecar serving `GET /metrics`, `/healthz` and
//! `/sitez?top=K` (port 0 picks an ephemeral port; the bound address is
//! printed). `--no-ledger` disables the per-site accuracy ledger fed by the
//! `PROFILE` opcode (it is on by default).

use esp_artifact::{AnyArtifact, ModelArtifact, Registry};
use esp_serve::{serve_any, serve_registry, Precision, ServeConfig};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{what} takes a number, got {value:?}");
        std::process::exit(2);
    })
}

fn fail(msg: String) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn load_artifact(args: &[String]) -> AnyArtifact {
    match (flag_value(args, "--model"), flag_value(args, "--synthetic")) {
        (Some(path), None) => AnyArtifact::load(std::path::Path::new(path))
            .unwrap_or_else(|e| fail(format!("cannot load {path}: {e}"))),
        (None, Some(spec)) => {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() != 3 {
                fail(format!("--synthetic takes DIM,HIDDEN,SEED, got {spec:?}"));
            }
            AnyArtifact::F64(ModelArtifact::synthetic(
                parse(parts[0], "--synthetic DIM"),
                parse(parts[1], "--synthetic HIDDEN"),
                parse(parts[2], "--synthetic SEED"),
            ))
        }
        _ => fail(
            "pick exactly one of --model PATH | --registry DIR --name M[@V][,…] | \
             --synthetic DIM,HIDDEN,SEED"
                .into(),
        ),
    }
}

/// Parse `--name M[@V][,M2[@V2]…]`: each entry is a registry name with an
/// optional pinned version; `--model-version V` pins every entry that has
/// no `@V` of its own (backward-compatible with the single-name form).
fn parse_models(args: &[String]) -> Vec<(String, Option<u32>)> {
    let names = flag_value(args, "--name")
        .unwrap_or_else(|| fail("--registry needs --name M[@V][,M2[@V2]…]".into()));
    let global_pin: Option<u32> =
        flag_value(args, "--model-version").map(|v| parse(v, "--model-version"));
    names
        .split(',')
        .map(|spec| {
            let spec = spec.trim();
            if spec.is_empty() {
                fail(format!("--name has an empty entry in {names:?}"));
            }
            match spec.split_once('@') {
                Some((n, v)) => (n.to_string(), Some(parse(v, "--name NAME@VERSION"))),
                None => (spec.to_string(), global_pin),
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: esp-serve (--model PATH | --registry DIR --name M[@V][,M2[@V2]…] [--model-version V] | --synthetic DIM,HIDDEN,SEED)\n\
             \x20                [--addr HOST:PORT] [--shards N] [--cache N]\n\
             \x20                [--reload-watch MS] [--precision f32|f64] [--predict-chunk N]\n\
             \x20                [--http-addr HOST:PORT] [--no-ledger]\n\
             \x20                [--trace-out FILE] [--metrics-out FILE]"
        );
        return;
    }
    let trace_out = flag_value(&args, "--trace-out").map(std::path::PathBuf::from);
    let metrics_out = flag_value(&args, "--metrics-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        esp_obs::trace::enable();
    }
    let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7871");
    let precision = flag_value(&args, "--precision").map(|v| {
        v.parse::<Precision>().unwrap_or_else(|e| {
            eprintln!("--precision: {e}");
            std::process::exit(2);
        })
    });
    let cfg = ServeConfig {
        shards: flag_value(&args, "--shards")
            .or_else(|| flag_value(&args, "--threads"))
            .map_or(0, |v| parse(v, "--shards")),
        cache_capacity: flag_value(&args, "--cache").map_or(4096, |v| parse(v, "--cache")),
        predict_chunk: flag_value(&args, "--predict-chunk")
            .map_or(32, |v| parse(v, "--predict-chunk")),
        precision,
        http_addr: flag_value(&args, "--http-addr").map(String::from),
        ledger: !args.iter().any(|a| a == "--no-ledger"),
        reload_watch_ms: flag_value(&args, "--reload-watch")
            .map(|v| parse(v, "--reload-watch")),
    };

    let mut handle = if let Some(dir) = flag_value(&args, "--registry") {
        if flag_value(&args, "--model").is_some() || flag_value(&args, "--synthetic").is_some() {
            fail("--registry cannot be combined with --model or --synthetic".into());
        }
        let models = parse_models(&args);
        let registry = Registry::open(dir);
        let h = match serve_registry(&registry, &models, addr, &cfg) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot serve on {addr}: {e}");
                std::process::exit(1);
            }
        };
        let served: Vec<String> = models
            .iter()
            .map(|(name, pin)| match pin {
                Some(v) => format!("{name}@{v} (pinned)"),
                None => {
                    let v = registry.versions(name).ok().and_then(|vs| vs.last().copied());
                    match v {
                        Some(v) => format!("{name}@{v}"),
                        None => name.clone(),
                    }
                }
            })
            .collect();
        eprintln!(
            "esp-serve listening on {} — registry {dir}, serving {} (default `{}`); \
             stop with `esp-client shutdown --addr {}`",
            h.addr(),
            served.join(", "),
            models[0].0,
            h.addr(),
        );
        if let Some(ms) = cfg.reload_watch_ms {
            eprintln!(
                "hot reload: polling {dir} every {ms} ms for newer versions of unpinned names"
            );
        }
        h
    } else {
        if cfg.reload_watch_ms.is_some() {
            eprintln!("note: --reload-watch only applies with --registry; ignoring");
        }
        let artifact = load_artifact(&args);
        let h = match serve_any(&artifact, addr, &cfg) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot serve on {addr}: {e}");
                std::process::exit(1);
            }
        };
        let served_bits = match (artifact.precision_bits(), precision) {
            (_, Some(Precision::F32)) | (32, None) => 32,
            _ => 64,
        };
        eprintln!(
            "esp-serve listening on {} — model `{}` ({} inputs, {} hidden, format v{}, f{} weights); \
             stop with `esp-client shutdown --addr {}`",
            h.addr(),
            artifact.meta().corpus_id,
            artifact.dim(),
            artifact.hidden(),
            esp_artifact::FORMAT_VERSION,
            served_bits,
            h.addr(),
        );
        h
    };
    if let Some(http) = handle.http_addr() {
        eprintln!("esp-serve telemetry on http://{http} — /metrics /healthz /sitez");
    }
    handle.wait();
    if let Some(path) = &metrics_out {
        match std::fs::write(path, handle.metrics_text()) {
            Ok(()) => eprintln!("wrote metrics exposition to {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &trace_out {
        match esp_obs::trace::write_json(path) {
            Ok(n) => eprintln!("wrote {n} trace events to {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    eprintln!("esp-serve: shut down cleanly");
}
