//! Integration: the Scheme-to-C pipeline end to end through the facade —
//! parse, compile, execute, analyse, and feed ESP.

use esp_repro::corpus::scheme_suite;
use esp_repro::esp::{EspConfig, EspModel, Learner, TrainingProgram};
use esp_repro::exec::{run, ExecLimits};
use esp_repro::ir::{ProcKind, ProgramAnalysis};
use esp_repro::lang::CompilerConfig;
use esp_repro::nnet::MlpConfig;

#[test]
fn scheme_trio_profiles_and_is_recursive() {
    for bench in scheme_suite() {
        let prog = bench
            .compile(&CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let out = run(&prog, &ExecLimits::default()).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(out.profile.dyn_cond_branches > 1_000, "{}", bench.name);
        let recursive = prog
            .iter_funcs()
            .filter(|(id, _)| prog.proc_kind(*id) == ProcKind::CallSelf)
            .count();
        assert!(recursive >= 2, "{}: not recursion-driven", bench.name);
        // Scheme-to-C output is C at the binary level (Table 2, feature 7).
        assert!(prog.funcs.iter().all(|f| f.lang == esp_repro::ir::Lang::C));
    }
}

#[test]
fn esp_can_train_on_scheme_and_predict_scheme() {
    // Train on two of the three Scheme programs, predict the third: the
    // retargetability story of the paper's §6 ("we plan to gather large
    // bodies of programs in other programming languages").
    let built: Vec<_> = scheme_suite()
        .into_iter()
        .map(|b| {
            let prog = b.compile(&CompilerConfig::default()).expect("compiles");
            let analysis = ProgramAnalysis::analyze(&prog);
            let profile = run(&prog, &ExecLimits::default()).expect("runs").profile;
            (b.name, prog, analysis, profile)
        })
        .collect();
    let corpus: Vec<TrainingProgram<'_>> = built[..2]
        .iter()
        .map(|(_, p, a, f)| TrainingProgram {
            prog: p,
            analysis: a,
            profile: f,
        })
        .collect();
    let model = EspModel::train(
        &corpus,
        &EspConfig {
            learner: Learner::Net(MlpConfig {
                hidden: 6,
                max_epochs: 100,
                patience: 20,
                restarts: 1,
                ..MlpConfig::default()
            }),
            ..EspConfig::default()
        },
    );
    let (name, prog, analysis, profile) = &built[2];
    let mut misses = 0.0;
    let mut total = 0u64;
    for site in prog.branch_sites() {
        let Some(c) = profile.counts(site) else { continue };
        total += c.executed;
        misses += if model.predict_taken(prog, analysis, site) {
            (c.executed - c.taken) as f64
        } else {
            c.taken as f64
        };
    }
    let rate = misses / total as f64;
    assert!(
        rate < 0.45,
        "{name}: Scheme-trained ESP no better than chance ({rate:.3})"
    );
}
