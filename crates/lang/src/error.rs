//! Front-end error types.

use std::fmt;

/// A lexing or parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the failure.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    pub(crate) fn new(line: u32, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A semantic (type-checking) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// The function being checked.
    pub func: String,
    /// What went wrong.
    pub msg: String,
}

impl TypeError {
    pub(crate) fn new(func: impl Into<String>, msg: impl Into<String>) -> Self {
        TypeError {
            func: func.into(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error in `{}`: {}", self.func, self.msg)
    }
}

impl std::error::Error for TypeError {}

/// Any front-end failure (parse, type-check, or code-generation validation).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Type checking failed.
    Type(TypeError),
    /// The generated IR failed structural validation (a compiler bug).
    Codegen(esp_ir::ValidateError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Type(e) => e.fmt(f),
            CompileError::Codegen(e) => write!(f, "codegen produced invalid IR: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

impl From<esp_ir::ValidateError> for CompileError {
    fn from(e: esp_ir::ValidateError) -> Self {
        CompileError::Codegen(e)
    }
}
