//! Server metrics, backed by an [`esp_obs::MetricsRegistry`].
//!
//! Every series lives in a **per-server** registry (concurrent servers in
//! one process must not share counters), registered once at startup and
//! recorded through cached `Arc` handles, so the hot predict path never
//! takes the registry lock. The `STATS` opcode serves both the nine summary
//! counters and the registry's full Prometheus text exposition.
//!
//! Two latency series with different scopes:
//!
//! * `esp_serve_request_us` — per-request **end-to-end** service time as a
//!   client sees it: frame decode, cache lookups, compute, response encode
//!   and write, for every opcode. This is what the snapshot's p50/p99/max
//!   report.
//! * `esp_serve_predict_compute_us` — the old, narrower series: just the
//!   predict handler (cache passes + network forward), kept for comparing
//!   compute cost against the full service time.

use std::sync::Arc;

use esp_obs::{Counter, Gauge, Log2Histogram, MetricsRegistry};

use crate::protocol::StatsSnapshot;

/// Per-shard gauge handles (the registry has no label support, so each
/// shard gets its own `esp_serve_shard_{i}_*` families).
#[derive(Debug)]
struct ShardGauges {
    queue_depth: Arc<Gauge>,
    cache_hit_ratio: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
}

/// Shared server metrics; recording goes through lock-free atomic handles.
#[derive(Debug)]
pub struct Metrics {
    registry: MetricsRegistry,
    /// Connections accepted.
    pub connections: Arc<Counter>,
    /// Frames handled (all opcodes).
    pub requests: Arc<Counter>,
    /// PREDICT batches handled.
    pub predict_requests: Arc<Counter>,
    /// Rows predicted.
    pub predictions: Arc<Counter>,
    /// Rows served from cache.
    pub cache_hits: Arc<Counter>,
    /// Rows computed by the network.
    pub cache_misses: Arc<Counter>,
    /// Hot reloads completed (model versions swapped in live).
    pub reloads: Arc<Counter>,
    request_us: Arc<Log2Histogram>,
    predict_compute_us: Arc<Log2Histogram>,
    batch_size: Arc<Log2Histogram>,
    cache_hit_ratio: Arc<Gauge>,
    predict_precision: Arc<Gauge>,
    model_version: Arc<Gauge>,
    shard_gauges: Vec<ShardGauges>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::with_shards(1)
    }
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Fresh metrics for a server of `nshards` shard workers: the
    /// `esp_serve_shards` gauge is set and one `esp_serve_shard_{i}_*`
    /// gauge family is registered per shard.
    pub fn with_shards(nshards: usize) -> Self {
        let registry = MetricsRegistry::new();
        let connections = registry.counter("esp_serve_connections_total");
        let requests = registry.counter("esp_serve_requests_total");
        let predict_requests = registry.counter("esp_serve_predict_requests_total");
        let predictions = registry.counter("esp_serve_predictions_total");
        let cache_hits = registry.counter("esp_serve_cache_hits_total");
        let cache_misses = registry.counter("esp_serve_cache_misses_total");
        let reloads = registry.counter("esp_serve_reloads_total");
        let request_us = registry.histogram("esp_serve_request_us");
        let predict_compute_us = registry.histogram("esp_serve_predict_compute_us");
        let batch_size = registry.histogram("esp_serve_batch_size");
        let cache_hit_ratio = registry.gauge("esp_serve_cache_hit_ratio");
        let predict_precision = registry.gauge("esp_serve_predict_precision");
        registry.gauge("esp_serve_shards").set(nshards as f64);
        let model_version = registry.gauge("esp_serve_model_version");
        let shard_gauges = (0..nshards)
            .map(|i| ShardGauges {
                queue_depth: registry.gauge(&format!("esp_serve_shard_{i}_queue_depth")),
                cache_hit_ratio: registry.gauge(&format!("esp_serve_shard_{i}_cache_hit_ratio")),
                cache_entries: registry.gauge(&format!("esp_serve_shard_{i}_cache_entries")),
            })
            .collect();
        Metrics {
            registry,
            connections,
            requests,
            predict_requests,
            predictions,
            cache_hits,
            cache_misses,
            reloads,
            request_us,
            predict_compute_us,
            batch_size,
            cache_hit_ratio,
            predict_precision,
            model_version,
            shard_gauges,
        }
    }

    /// Record one request's end-to-end service time (any opcode), in
    /// microseconds: from the frame completing to the response written.
    pub fn record_request_us(&self, us: u64) {
        self.request_us.record(us);
    }

    /// Record the predict handler's compute-scoped latency in microseconds
    /// (the series previously reported as the only latency).
    pub fn record_predict_compute_us(&self, us: u64) {
        self.predict_compute_us.record(us);
    }

    /// Record one predict batch's row count.
    pub fn record_batch_size(&self, rows: u64) {
        self.batch_size.record(rows);
    }

    /// Record the serving model's numeric precision (64 or 32 bits) on the
    /// `esp_serve_predict_precision` gauge; set once at server start.
    pub fn set_precision(&self, bits: u32) {
        self.predict_precision.set(bits as f64);
    }

    /// Record the default model's registry version on the
    /// `esp_serve_model_version` gauge; set at start and on hot reload.
    pub fn set_model_version(&self, version: u32) {
        self.model_version.set(version as f64);
    }

    /// Number of shard workers this registry was built for.
    pub fn shard_count(&self) -> usize {
        self.shard_gauges.len()
    }

    /// Refresh one shard's health gauges from its worker counters.
    pub fn set_shard(&self, shard: usize, queue_depth: u64, hits: u64, misses: u64, entries: u64) {
        let Some(g) = self.shard_gauges.get(shard) else {
            return;
        };
        g.queue_depth.set(queue_depth as f64);
        let total = hits + misses;
        if total > 0 {
            g.cache_hit_ratio.set(hits as f64 / total as f64);
        }
        g.cache_entries.set(entries as f64);
    }

    /// Refresh the cache-hit-ratio gauge from the hit/miss counters.
    pub fn update_cache_hit_ratio(&self) {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total > 0 {
            self.cache_hit_ratio.set(hits as f64 / total as f64);
        }
    }

    /// The full Prometheus text exposition of this server's registry. The
    /// cache-hit-ratio gauge is refreshed first, so every exposition path
    /// (`STATS`, HTTP `/metrics`, `--metrics-out`) renders current values.
    pub fn render_text(&self) -> String {
        self.update_cache_hit_ratio();
        self.registry.render_text()
    }

    /// A consistent-enough snapshot of every counter (individual loads are
    /// atomic; the set is not, which is fine for monitoring). Latency
    /// quantiles summarize the end-to-end `esp_serve_request_us` series.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.snapshot_with(self.render_text())
    }

    /// [`Metrics::snapshot`] with a caller-supplied exposition string. The
    /// server passes its *unified* exposition (registry + accuracy ledger)
    /// here so the STATS opcode and the HTTP `/metrics` endpoint render
    /// byte-identical text from the same snapshot path.
    pub fn snapshot_with(&self, exposition: String) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.get(),
            requests: self.requests.get(),
            predict_requests: self.predict_requests.get(),
            predictions: self.predictions.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            p50_us: self.request_us.quantile(0.50),
            p99_us: self.request_us.quantile(0.99),
            max_us: self.request_us.max(),
            exposition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_snapshot_is_zero() {
        let m = Metrics::new();
        let s = m.snapshot();
        assert_eq!(s.connections, 0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.predictions, 0);
        assert_eq!((s.p50_us, s.p99_us, s.max_us), (0, 0, 0));
        // the exposition is present even when everything is zero
        assert!(s.exposition.contains("esp_serve_requests_total 0"));
    }

    #[test]
    fn latency_quantiles_bracket_the_data() {
        let m = Metrics::new();
        for us in [10u64, 12, 14, 900, 1000] {
            m.record_request_us(us);
        }
        let s = m.snapshot();
        // p50 falls in the bucket holding 10–14 µs → upper bound 15
        assert_eq!(s.p50_us, 15);
        // p99 falls in the bucket holding 900/1000 µs → upper bound 1023
        assert_eq!(s.p99_us, 1023);
        assert_eq!(s.max_us, 1000);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let m = Metrics::new();
        m.record_request_us(0);
        assert_eq!(m.snapshot().p50_us, 0);
    }

    #[test]
    fn compute_series_is_separate_from_request_series() {
        let m = Metrics::new();
        m.record_request_us(1000);
        m.record_predict_compute_us(10);
        let text = m.render_text();
        assert!(text.contains("esp_serve_request_us_count 1"));
        assert!(text.contains("esp_serve_predict_compute_us_count 1"));
        assert!(text.contains("esp_serve_predict_compute_us_sum 10"));
        assert!(text.contains("esp_serve_request_us_sum 1000"));
    }

    #[test]
    fn precision_gauge_is_exposed() {
        let m = Metrics::new();
        m.set_precision(32);
        assert!(m.render_text().contains("esp_serve_predict_precision 32"));
        m.set_precision(64);
        assert!(m.render_text().contains("esp_serve_predict_precision 64"));
    }

    #[test]
    fn cache_hit_ratio_tracks_counters() {
        let m = Metrics::new();
        m.cache_hits.add(3);
        m.cache_misses.add(1);
        m.record_batch_size(4);
        let s = m.snapshot();
        assert!(s.exposition.contains("esp_serve_cache_hit_ratio 0.75"));
        assert!(s.exposition.contains("esp_serve_batch_size_count 1"));
    }
}
