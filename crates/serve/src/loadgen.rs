//! Deterministic load generator: drives a server with a seeded stream of
//! predict batches drawn from a fixed key pool, measures exact client-side
//! latency quantiles, and writes `BENCH_serve.json`.
//!
//! The *request content* is a pure function of the seed (PCG32 all the way
//! down): every work item — which pool rows a batch carries and which
//! outcomes are profiled back — is precomputed before the clock starts, so
//! every run asks for the same rows regardless of how many connections
//! race to claim them. With one connection the server also processes them
//! in order, making the reported cache hit rate exactly reproducible; with
//! several, only the claim order (and thus hit/miss attribution at the
//! margin) varies. Timings, of course, vary with the machine — that is
//! what the file is for.
//!
//! Two load shapes run back to back:
//!
//! - **Closed loop** — `connections` clients each keep exactly one request
//!   in flight, claiming precomputed items from a shared counter. This
//!   measures service latency and peak sustainable throughput.
//! - **Open loop** (optional) — requests *arrive* on a fixed schedule
//!   (`t_i = i / rate`) whether or not earlier ones finished, the way real
//!   callers behave; latency is measured from the scheduled arrival, so
//!   queueing delay counts. A sweep over target rates yields the
//!   latency-under-load curve (`rps_target` → achieved rps, p50/p99) that
//!   shows where the server saturates.
//!
//! With `profile_rate > 0` the generator also closes the accuracy loop:
//! each pool key gets a deterministic ground-truth taken-probability (seed
//! `+2`), and after every predict batch the precomputed outcome records
//! (seed `+3`) stream back via the `PROFILE` opcode. The run then reports
//! the server ledger's `observed_miss_rate` and `calibration_ece`, read
//! back out of the final `STATS` exposition.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use esp_runtime::Pcg32;

use crate::client::Client;
use crate::protocol::{PredictRow, ProfileRecord, ServeError, StatsSnapshot};

/// Load-generator knobs. Defaults produce a few seconds of traffic.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Predict requests (batches) to send in the closed-loop phase.
    pub requests: usize,
    /// Rows per request.
    pub batch: usize,
    /// Distinct feature vectors in the pool; smaller pools mean higher
    /// cache hit rates.
    pub keys: usize,
    /// RNG seed for the pool and the request sequence.
    pub seed: u64,
    /// Fraction of predicted rows replayed back as `PROFILE` outcomes
    /// (`0.0` disables the accuracy loop entirely — no profile frames are
    /// sent).
    pub profile_rate: f64,
    /// Concurrent client connections (clamped to at least 1). Each keeps
    /// one request in flight during the closed loop and owns an arrival
    /// stripe during the open loop.
    pub connections: usize,
    /// Open-loop arrival-rate sweep: `None` skips the phase, `Some(rates)`
    /// sweeps those request-per-second targets, and `Some(vec![])` derives
    /// targets from the measured closed-loop throughput (0.5×, 0.9×,
    /// 1.2× — below, near, and past saturation).
    pub open_loop: Option<Vec<f64>>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            requests: 500,
            batch: 32,
            keys: 256,
            seed: 0xBE7C4,
            profile_rate: 0.0,
            connections: 1,
            open_loop: None,
        }
    }
}

/// One point on the open-loop latency-under-load curve.
#[derive(Debug, Clone)]
pub struct OpenLoopPoint {
    /// Scheduled arrival rate, requests per second.
    pub rps_target: f64,
    /// Completed requests divided by the phase's wall clock — tracks the
    /// target until the server saturates, then flattens at capacity.
    pub achieved_rps: f64,
    /// Median latency from *scheduled arrival* to response, milliseconds
    /// (queueing delay included — this is what explodes past saturation).
    pub p50_ms: f64,
    /// 99th-percentile scheduled-arrival latency, milliseconds.
    pub p99_ms: f64,
}

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Echo of the generator knobs.
    pub cfg: LoadGenConfig,
    /// Rows predicted in the closed-loop phase.
    pub predictions: u64,
    /// Wall-clock for the closed-loop phase, milliseconds.
    pub elapsed_ms: f64,
    /// Closed-loop predict requests per second.
    pub throughput_rps: f64,
    /// Closed-loop rows per second.
    pub predictions_per_sec: f64,
    /// Exact client-side round-trip latency quantiles, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile round-trip latency, milliseconds.
    pub p99_ms: f64,
    /// Worst round-trip latency, milliseconds.
    pub max_ms: f64,
    /// Histogram-estimated p50, microseconds (from the shared
    /// [`esp_obs::Log2Histogram`] the run records into).
    pub hist_p50_us: u64,
    /// Histogram-estimated p90, microseconds.
    pub hist_p90_us: u64,
    /// Histogram-estimated p99, microseconds.
    pub hist_p99_us: u64,
    /// Server-side cache hit rate over the closed-loop phase's rows (the
    /// open loop replays the same pool, so its hits would inflate this).
    pub cache_hit_rate: f64,
    /// Shard workers the server runs (the `esp_serve_shards` gauge).
    pub shards: u64,
    /// Hot reloads the server has performed (`esp_serve_reloads_total`).
    pub reloads_total: u64,
    /// The open-loop latency-under-load curve, one point per swept rate
    /// (empty when the phase is skipped).
    pub open_loop: Vec<OpenLoopPoint>,
    /// The server's miss fan-out chunk (rows per worker chunk) used for
    /// this run; `0` when driving a remote server whose setting is unknown.
    /// Filled in by the caller ([`run`] cannot see the server's config).
    pub predict_chunk: usize,
    /// Where `predict_chunk` came from: `"flag"` (`--predict-chunk`),
    /// `"sweep"` (chosen by the bench's one-time sweep), or `"default"`.
    pub predict_chunk_source: String,
    /// The server ledger's observed-weighted miss rate at the end of the
    /// run (`NaN` when no outcomes were profiled back).
    pub observed_miss_rate: f64,
    /// The server ledger's expected calibration error at the end of the
    /// run (`NaN` when no outcomes were profiled back).
    pub calibration_ece: f64,
    /// `PROFILE` outcome records streamed back per second (`0` when
    /// `profile_rate` is `0`).
    pub profile_updates_per_sec: f64,
    /// Server counters at the end of the run.
    pub server: StatsSnapshot,
}

impl LoadGenReport {
    /// The one-line human summary `esp-client bench` prints: throughput
    /// plus the histogram's quantile estimates.
    pub fn summary_line(&self) -> String {
        format!(
            "bench: {} requests x {} rows over {} conn(s) in {:.0} ms | {:.0} req/s, {:.0} rows/s | \
             latency p50 {} us, p90 {} us, p99 {} us (histogram) | cache hit rate {:.1}%",
            self.cfg.requests,
            self.cfg.batch,
            self.cfg.connections.max(1),
            self.elapsed_ms,
            self.throughput_rps,
            self.predictions_per_sec,
            self.hist_p50_us,
            self.hist_p90_us,
            self.hist_p99_us,
            self.cache_hit_rate * 100.0,
        )
    }
}

fn exact_quantile_ms(sorted_us: &[u64], q: f64) -> f64 {
    esp_obs::exact_quantile(sorted_us, q) as f64 / 1e3
}

/// JSON has no NaN/Infinity: non-finite values render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Build the deterministic key pool: `keys` synthetic rows of width `dim`.
/// Masks mostly keep features live, with a seeded sprinkling of gated
/// positions so the mask path is exercised.
pub fn key_pool(dim: usize, cfg: &LoadGenConfig) -> Vec<PredictRow> {
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    (0..cfg.keys)
        .map(|_| {
            let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mask: Vec<bool> = (0..dim).map(|_| !rng.gen_bool(0.1)).collect();
            PredictRow { row, mask }
        })
        .collect()
}

/// One precomputed request: which pool rows to send, and which outcome
/// records (if any) to replay back after the batch returns. Precomputing
/// the whole run keeps request content seed-deterministic even when
/// several connections race to claim items.
struct WorkItem {
    picks: Vec<usize>,
    profile: Vec<ProfileRecord>,
}

fn build_work(site_keys: &[Vec<u8>], cfg: &LoadGenConfig) -> Vec<WorkItem> {
    let pool_len = site_keys.len();
    let mut seq = Pcg32::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut profile_rng = Pcg32::seed_from_u64(cfg.seed.wrapping_add(3));
    // Each pool key's deterministic ground-truth taken-probability, which
    // the outcome sampler draws against.
    let mut truth_rng = Pcg32::seed_from_u64(cfg.seed.wrapping_add(2));
    let truth: Vec<f64> = (0..pool_len)
        .map(|_| truth_rng.gen_range(0.0..1.0))
        .collect();
    (0..cfg.requests)
        .map(|_| {
            let picks: Vec<usize> = (0..cfg.batch)
                .map(|_| seq.gen_range(0..pool_len))
                .collect();
            let mut profile = Vec::new();
            if cfg.profile_rate > 0.0 {
                for &i in &picks {
                    if profile_rng.gen_bool(cfg.profile_rate) {
                        profile.push(ProfileRecord {
                            site_key: site_keys[i].clone(),
                            taken: profile_rng.gen_bool(truth[i]),
                            weight: 1.0,
                        });
                    }
                }
            }
            WorkItem { picks, profile }
        })
        .collect()
}

/// Closed loop: `connections` clients each keep one request in flight,
/// claiming items off a shared counter. Returns the merged, sorted
/// latencies (µs) and the phase wall-clock in seconds.
fn closed_loop(
    addr: &str,
    pool: &[PredictRow],
    items: &[WorkItem],
    connections: usize,
    hist: &esp_obs::Log2Histogram,
) -> Result<(Vec<u64>, f64), ServeError> {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let results: Vec<Result<Vec<u64>, ServeError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                s.spawn(|| -> Result<Vec<u64>, ServeError> {
                    let mut client = Client::connect(addr)?;
                    let mut lat = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let batch: Vec<PredictRow> =
                            item.picks.iter().map(|&k| pool[k].clone()).collect();
                        let _sp = esp_obs::span!("client", "predict", rows = batch.len());
                        let sent = Instant::now();
                        let preds = client.predict(batch)?;
                        let us = sent.elapsed().as_micros() as u64;
                        lat.push(us);
                        hist.record(us);
                        debug_assert_eq!(preds.len(), item.picks.len());
                        if !item.profile.is_empty() {
                            client.profile(item.profile.clone())?;
                        }
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
    let mut all = Vec::new();
    for r in results {
        all.extend(r?);
    }
    all.sort_unstable();
    Ok((all, elapsed_s))
}

/// One open-loop point: requests arrive at `t_i = i / rate` on a fixed
/// schedule striped across the connections, whether or not earlier ones
/// have finished. Latency runs from the *scheduled* arrival, so a server
/// that falls behind shows its queueing delay.
fn open_loop_point(
    addr: &str,
    pool: &[PredictRow],
    items: &[WorkItem],
    connections: usize,
    rps_target: f64,
    total: usize,
) -> Result<OpenLoopPoint, ServeError> {
    // A small grace lead so the first arrivals aren't already late while
    // the threads connect.
    let t0 = Instant::now() + Duration::from_millis(20);
    let results: Vec<Result<Vec<u64>, ServeError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                s.spawn(move || -> Result<Vec<u64>, ServeError> {
                    let mut client = Client::connect(addr)?;
                    let mut lat = Vec::new();
                    let mut i = conn;
                    while i < total {
                        let due = t0 + Duration::from_secs_f64(i as f64 / rps_target);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let item = &items[i % items.len()];
                        let batch: Vec<PredictRow> =
                            item.picks.iter().map(|&k| pool[k].clone()).collect();
                        client.predict(batch)?;
                        lat.push(due.elapsed().as_micros() as u64);
                        i += connections;
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64().max(1e-9);
    let mut all = Vec::new();
    for r in results {
        all.extend(r?);
    }
    all.sort_unstable();
    Ok(OpenLoopPoint {
        rps_target,
        achieved_rps: all.len() as f64 / elapsed_s,
        p50_ms: exact_quantile_ms(&all, 0.50),
        p99_ms: exact_quantile_ms(&all, 0.99),
    })
}

/// Run the generator against a server: the closed loop, then (when
/// configured) the open-loop sweep. The pre-run server stats are
/// subtracted out, so the reported cache hit rate covers exactly the
/// closed-loop phase.
pub fn run(addr: &str, dim: usize, cfg: &LoadGenConfig) -> Result<LoadGenReport, ServeError> {
    if !(0.0..=1.0).contains(&cfg.profile_rate) {
        return Err(ServeError::Protocol(format!(
            "profile rate must be in [0, 1], got {}",
            cfg.profile_rate
        )));
    }
    let connections = cfg.connections.max(1);
    let pool = key_pool(dim, cfg);
    let site_keys: Vec<Vec<u8>> = pool
        .iter()
        .map(|r| crate::cache::cache_key(&r.row, &r.mask))
        .collect();
    let items = build_work(&site_keys, cfg);
    let profile_updates: u64 = items.iter().map(|i| i.profile.len() as u64).sum();

    let mut control = Client::connect(addr)?;
    let before = control.stats()?;
    let hist = esp_obs::Log2Histogram::new();
    let (latencies_us, elapsed_s) = closed_loop(addr, &pool, &items, connections, &hist)?;
    let after_closed = control.stats()?;
    let hits = after_closed.cache_hits - before.cache_hits;
    let misses = after_closed.cache_misses - before.cache_misses;
    let run_rows = hits + misses;
    let closed_rps = cfg.requests as f64 / elapsed_s;

    let mut open = Vec::new();
    if let Some(targets) = &cfg.open_loop {
        let targets: Vec<f64> = if targets.is_empty() {
            [0.5, 0.9, 1.2].iter().map(|f| f * closed_rps).collect()
        } else {
            targets.clone()
        };
        let per_point = (cfg.requests / 2).clamp(20, 400);
        for rate in targets {
            if rate.is_finite() && rate > 0.0 {
                open.push(open_loop_point(
                    addr, &pool, &items, connections, rate, per_point,
                )?);
            }
        }
    }

    let after = control.stats()?;
    Ok(LoadGenReport {
        cfg: cfg.clone(),
        predictions: (cfg.requests * cfg.batch) as u64,
        elapsed_ms: elapsed_s * 1e3,
        throughput_rps: closed_rps,
        predictions_per_sec: (cfg.requests * cfg.batch) as f64 / elapsed_s,
        p50_ms: exact_quantile_ms(&latencies_us, 0.50),
        p99_ms: exact_quantile_ms(&latencies_us, 0.99),
        max_ms: latencies_us.last().copied().unwrap_or(0) as f64 / 1e3,
        hist_p50_us: hist.quantile(0.50),
        hist_p90_us: hist.quantile(0.90),
        hist_p99_us: hist.quantile(0.99),
        cache_hit_rate: if run_rows == 0 {
            0.0
        } else {
            hits as f64 / run_rows as f64
        },
        shards: gauge_value(&after.exposition, "esp_serve_shards").unwrap_or(1.0) as u64,
        reloads_total: gauge_value(&after.exposition, "esp_serve_reloads_total")
            .unwrap_or(0.0) as u64,
        open_loop: open,
        predict_chunk: 0,
        predict_chunk_source: "default".to_string(),
        observed_miss_rate: if profile_updates > 0 {
            gauge_value(&after.exposition, "esp_ledger_observed_miss_rate")
                .unwrap_or(f64::NAN)
        } else {
            f64::NAN
        },
        calibration_ece: if profile_updates > 0 {
            gauge_value(&after.exposition, "esp_ledger_calibration_ece").unwrap_or(f64::NAN)
        } else {
            f64::NAN
        },
        profile_updates_per_sec: profile_updates as f64 / elapsed_s,
        server: after,
    })
}

/// Pull a single unlabeled sample out of a Prometheus text exposition:
/// the value on the `NAME VALUE` line for exactly `family` (a longer
/// family name sharing the prefix does not match).
pub fn gauge_value(exposition: &str, family: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        line.strip_prefix(family)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Render the report as the `BENCH_serve.json` document.
pub fn render_json(r: &LoadGenReport) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"requests\": {},\n", r.cfg.requests));
    s.push_str(&format!("  \"batch\": {},\n", r.cfg.batch));
    s.push_str(&format!("  \"keys\": {},\n", r.cfg.keys));
    s.push_str(&format!("  \"seed\": {},\n", r.cfg.seed));
    s.push_str(&format!("  \"profile_rate\": {},\n", r.cfg.profile_rate));
    s.push_str(&format!(
        "  \"connections\": {},\n",
        r.cfg.connections.max(1)
    ));
    s.push_str(&format!("  \"shards\": {},\n", r.shards));
    s.push_str(&format!("  \"reloads_total\": {},\n", r.reloads_total));
    s.push_str(&format!("  \"predictions\": {},\n", r.predictions));
    s.push_str(&format!("  \"elapsed_ms\": {:.3},\n", r.elapsed_ms));
    s.push_str(&format!("  \"throughput_rps\": {:.3},\n", r.throughput_rps));
    s.push_str(&format!(
        "  \"predictions_per_sec\": {:.3},\n",
        r.predictions_per_sec
    ));
    s.push_str(&format!("  \"p50_ms\": {:.3},\n", r.p50_ms));
    s.push_str(&format!("  \"p99_ms\": {:.3},\n", r.p99_ms));
    s.push_str(&format!("  \"max_ms\": {:.3},\n", r.max_ms));
    s.push_str(&format!("  \"hist_p50_us\": {},\n", r.hist_p50_us));
    s.push_str(&format!("  \"hist_p90_us\": {},\n", r.hist_p90_us));
    s.push_str(&format!("  \"hist_p99_us\": {},\n", r.hist_p99_us));
    s.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", r.cache_hit_rate));
    s.push_str("  \"open_loop\": [\n");
    for (i, p) in r.open_loop.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rps_target\": {:.3}, \"achieved_rps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            p.rps_target,
            p.achieved_rps,
            p.p50_ms,
            p.p99_ms,
            if i + 1 == r.open_loop.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"predict_chunk\": {},\n", r.predict_chunk));
    s.push_str(&format!(
        "  \"predict_chunk_source\": \"{}\",\n",
        r.predict_chunk_source
    ));
    s.push_str(&format!(
        "  \"observed_miss_rate\": {},\n",
        json_f64(r.observed_miss_rate)
    ));
    s.push_str(&format!(
        "  \"calibration_ece\": {},\n",
        json_f64(r.calibration_ece)
    ));
    s.push_str(&format!(
        "  \"profile_updates_per_sec\": {:.3},\n",
        r.profile_updates_per_sec
    ));
    s.push_str("  \"server\": {\n");
    s.push_str(&format!(
        "    \"connections\": {},\n",
        r.server.connections
    ));
    s.push_str(&format!("    \"requests\": {},\n", r.server.requests));
    s.push_str(&format!(
        "    \"predictions\": {},\n",
        r.server.predictions
    ));
    s.push_str(&format!("    \"cache_hits\": {},\n", r.server.cache_hits));
    s.push_str(&format!(
        "    \"cache_misses\": {},\n",
        r.server.cache_misses
    ));
    s.push_str(&format!("    \"p50_us\": {},\n", r.server.p50_us));
    s.push_str(&format!("    \"p99_us\": {}\n", r.server.p99_us));
    s.push_str("  }\n}\n");
    s
}

/// Write the report to `path` as JSON.
pub fn write_json(r: &LoadGenReport, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, render_json(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadGenReport {
        LoadGenReport {
            cfg: LoadGenConfig::default(),
            predictions: 16000,
            elapsed_ms: 1200.0,
            throughput_rps: 416.7,
            predictions_per_sec: 13333.3,
            p50_ms: 1.2,
            p99_ms: 4.5,
            max_ms: 9.0,
            hist_p50_us: 2047,
            hist_p90_us: 4095,
            hist_p99_us: 8191,
            cache_hit_rate: 0.82,
            shards: 2,
            reloads_total: 0,
            open_loop: vec![
                OpenLoopPoint {
                    rps_target: 200.0,
                    achieved_rps: 199.2,
                    p50_ms: 1.1,
                    p99_ms: 3.2,
                },
                OpenLoopPoint {
                    rps_target: 500.0,
                    achieved_rps: 417.0,
                    p50_ms: 88.0,
                    p99_ms: 240.0,
                },
            ],
            predict_chunk: 32,
            predict_chunk_source: "sweep".to_string(),
            observed_miss_rate: 0.25,
            calibration_ece: 0.03,
            profile_updates_per_sec: 1234.5,
            server: StatsSnapshot::default(),
        }
    }

    #[test]
    fn key_pool_is_deterministic_and_shaped() {
        let cfg = LoadGenConfig {
            keys: 10,
            seed: 7,
            ..LoadGenConfig::default()
        };
        let a = key_pool(5, &cfg);
        let b = key_pool(5, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|r| r.row.len() == 5 && r.mask.len() == 5));
        // pools from different seeds differ
        let c = key_pool(
            5,
            &LoadGenConfig {
                keys: 10,
                seed: 8,
                ..LoadGenConfig::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn work_items_are_seed_deterministic() {
        let cfg = LoadGenConfig {
            requests: 12,
            batch: 4,
            keys: 16,
            seed: 99,
            profile_rate: 0.5,
            ..LoadGenConfig::default()
        };
        let keys: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i]).collect();
        let a = build_work(&keys, &cfg);
        let b = build_work(&keys, &cfg);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.picks, y.picks);
            assert_eq!(x.profile.len(), y.profile.len());
            for (p, q) in x.profile.iter().zip(&y.profile) {
                assert_eq!((&p.site_key, p.taken), (&q.site_key, q.taken));
            }
        }
        // some but not all rows profile back at rate 0.5
        let total: usize = a.iter().map(|i| i.profile.len()).sum();
        assert!(total > 0 && total < 12 * 4, "profiled {total} of 48");
    }

    #[test]
    fn exact_quantiles() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!((exact_quantile_ms(&us, 0.50) - 50.0).abs() < 1e-9);
        assert!((exact_quantile_ms(&us, 0.99) - 99.0).abs() < 1e-9);
        assert_eq!(exact_quantile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn json_has_the_required_keys() {
        let r = report();
        let json = render_json(&r);
        for key in [
            "\"requests\"",
            "\"throughput_rps\"",
            "\"predictions_per_sec\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
            "\"hist_p90_us\"",
            "\"cache_hit_rate\"",
            "\"connections\"",
            "\"shards\"",
            "\"reloads_total\"",
            "\"open_loop\"",
            "\"rps_target\"",
            "\"achieved_rps\"",
            "\"predict_chunk\"",
            "\"predict_chunk_source\"",
            "\"profile_rate\"",
            "\"observed_miss_rate\"",
            "\"calibration_ece\"",
            "\"profile_updates_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"observed_miss_rate\": 0.250000"));
        assert!(json.contains("\"shards\": 2"));
        // the two curve points render comma-separated inside the array
        assert!(json.contains("{\"rps_target\": 200.000"));
        assert!(json.contains("{\"rps_target\": 500.000"));
        let line = r.summary_line();
        assert!(line.contains("p90 4095 us"));
        assert!(line.contains("500 requests"));
        assert!(line.contains("1 conn(s)"));
    }

    #[test]
    fn unprofiled_runs_render_null_accuracy() {
        let r = LoadGenReport {
            predictions: 0,
            elapsed_ms: 0.0,
            throughput_rps: 0.0,
            predictions_per_sec: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
            hist_p50_us: 0,
            hist_p90_us: 0,
            hist_p99_us: 0,
            cache_hit_rate: 0.0,
            open_loop: Vec::new(),
            predict_chunk: 0,
            predict_chunk_source: "default".to_string(),
            observed_miss_rate: f64::NAN,
            calibration_ece: f64::NAN,
            profile_updates_per_sec: 0.0,
            ..report()
        };
        let json = render_json(&r);
        assert!(json.contains("\"observed_miss_rate\": null"));
        assert!(json.contains("\"calibration_ece\": null"));
        assert!(json.contains("\"profile_updates_per_sec\": 0.000"));
        // an empty sweep still renders the (empty) array
        assert!(json.contains("\"open_loop\": [\n  ],"));
    }

    #[test]
    fn gauge_value_matches_exact_family_names() {
        let text = "# TYPE esp_ledger_observed_weight gauge\n\
                    esp_ledger_observed_weight 12.5\n\
                    esp_ledger_observed_miss_rate 0.125\n\
                    esp_ledger_calibration_ece NaN\n";
        assert_eq!(gauge_value(text, "esp_ledger_observed_weight"), Some(12.5));
        assert_eq!(
            gauge_value(text, "esp_ledger_observed_miss_rate"),
            Some(0.125)
        );
        // A prefix of a longer family must not match the longer line.
        assert_eq!(gauge_value(text, "esp_ledger_observed"), None);
        assert_eq!(gauge_value(text, "esp_ledger_missing"), None);
        // Prometheus renders NaN literally; it parses as NaN here.
        assert!(gauge_value(text, "esp_ledger_calibration_ece")
            .is_some_and(f64::is_nan));
    }
}
